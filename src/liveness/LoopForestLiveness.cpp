//===- liveness/LoopForestLiveness.cpp - Loop-forest liveness -------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "liveness/LoopForestLiveness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "analysis/LoopForest.h"
#include "analysis/Reducibility.h"
#include "core/UseInfo.h"
#include "ir/CFG.h"
#include "support/Debug.h"

using namespace ssalive;

LoopForestLiveness::LoopForestLiveness(const Function &F) {
  unsigned NumBlocks = F.numBlocks();
  unsigned NumValues = F.numValues();
  CFG G = CFG::fromFunction(F);
  DFS D(G);

#ifndef NDEBUG
  {
    DomTree DT(G, D);
    assert(analyzeReducibility(D, DT).Reducible &&
           "loop-forest liveness requires a reducible CFG");
  }
#endif

  // Block-local Gen (Definition-1 upward-exposed uses) and Def sets.
  std::vector<BitVector> Gen(NumBlocks, BitVector(NumValues));
  std::vector<BitVector> DefAt(NumBlocks, BitVector(NumValues));
  for (const auto &VP : F.values()) {
    const Value &V = *VP;
    if (V.defs().empty())
      continue;
    unsigned Id = V.id();
    unsigned DefB = defBlockId(V);
    DefAt[DefB].set(Id);
    for (const Use &U : V.uses()) {
      unsigned UseB = liveUseBlock(U);
      if (UseB != DefB)
        Gen[UseB].set(Id);
    }
  }

  // Pass 1: partial liveness over the reduced graph. Non-back edges lead
  // to strictly smaller postorder numbers, so one sweep in increasing
  // postorder sees every reduced successor finished — no iteration.
  LiveIn.assign(NumBlocks, BitVector(NumValues));
  LiveOut.assign(NumBlocks, BitVector(NumValues));
  for (unsigned B : D.postorderSequence()) {
    BitVector &Out = LiveOut[B];
    const auto &Succs = G.successors(B);
    for (unsigned Idx = 0, E = static_cast<unsigned>(Succs.size()); Idx != E;
         ++Idx) {
      if (D.edgeKind(B, Idx) == EdgeKind::Back)
        continue;
      Out |= LiveIn[Succs[Idx]];
    }
    BitVector &In = LiveIn[B];
    In = Out;
    In.resetAll(DefAt[B]);
    In |= Gen[B];
  }

  // Pass 2: everything live-in at a loop header is live throughout the
  // loop (its definition dominates the header, so no member kills it).
  // Headers are visited outer-to-inner — increasing DFS preorder, since
  // on reducible CFGs an outer header dominates its inner headers — so an
  // inner header's live-in already carries the outer contribution when it
  // becomes the inner loop's LiveLoop set.
  LoopForest LF(D);
  auto chainContains = [&LF](unsigned Block, unsigned Header) {
    unsigned H = LF.isLoopHeader(Block) ? Block : LF.header(Block);
    while (H != LoopForest::NoHeader) {
      if (H == Header)
        return true;
      H = LF.header(H);
    }
    return false;
  };

  for (unsigned H : D.preorderSequence()) {
    if (!LF.isLoopHeader(H))
      continue;
    const BitVector LiveLoop = LiveIn[H];
    if (LiveLoop.none())
      continue;
    LiveOut[H] |= LiveLoop;
    for (unsigned M = 0; M != NumBlocks; ++M) {
      if (M == H || !chainContains(M, H))
        continue;
      LiveIn[M] |= LiveLoop;
      LiveOut[M] |= LiveLoop;
    }
  }
}

bool LoopForestLiveness::isLiveIn(const Value &V, const BasicBlock &B) {
  return LiveIn[B.id()].test(V.id());
}

bool LoopForestLiveness::isLiveOut(const Value &V, const BasicBlock &B) {
  return LiveOut[B.id()].test(V.id());
}
