//===- liveness/PathExplorationLiveness.h - Def-use backwalk ----*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-variable liveness computation of Appel & Palsberg ("Modern
/// Compiler Implementation in Java"), the paper's related work [2] and the
/// only other SSA-based liveness algorithm it discusses: for each variable,
/// walk backwards from every use until the definition, marking live-in and
/// live-out. Precomputes full sets; unlike the paper's technique the result
/// is invalidated by any variable/use change, which is exactly the contrast
/// Section 7 draws.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_LIVENESS_PATHEXPLORATIONLIVENESS_H
#define SSALIVE_LIVENESS_PATHEXPLORATIONLIVENESS_H

#include "core/LivenessInterface.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace ssalive {

/// Per-variable backward marking over the CFG; sets stored as per-block
/// bitsets over the value universe.
class PathExplorationLiveness : public LivenessQueries {
public:
  explicit PathExplorationLiveness(const Function &F);

  bool isLiveIn(const Value &V, const BasicBlock &B) override;
  bool isLiveOut(const Value &V, const BasicBlock &B) override;
  const char *backendName() const override { return "path-exploration"; }

private:
  std::vector<BitVector> LiveIn;  ///< [block](value id)
  std::vector<BitVector> LiveOut; ///< [block](value id)
};

} // namespace ssalive

#endif // SSALIVE_LIVENESS_PATHEXPLORATIONLIVENESS_H
