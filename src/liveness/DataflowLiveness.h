//===- liveness/DataflowLiveness.h - Iterative data-flow baseline -*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's comparator ("Native"): classic backward iterative data-flow
/// liveness with a stack worklist (after Cooper, Harvey & Kennedy,
/// "Iterative Data-Flow Analysis, Revisited"), reimplementing the LAO code
/// generator's design that Section 6.2 describes:
///   * the variable universe is collected up front and densely indexed;
///   * block-local collection uses Briggs-Torczon sparse sets;
///   * global live-in/live-out sets are sorted dense arrays, and a query is
///     a single binary search;
///   * for SSA destruction the universe can be restricted to φ-related
///     variables ("ignoring non-φ-related variables completely").
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_LIVENESS_DATAFLOWLIVENESS_H
#define SSALIVE_LIVENESS_DATAFLOWLIVENESS_H

#include "core/LivenessInterface.h"
#include "ir/Function.h"
#include "support/BitVector.h"
#include "support/SortedArraySet.h"

#include <vector>

namespace ssalive {

/// Configuration of the baseline.
struct DataflowOptions {
  /// Restrict the universe to φ-related values (the LAO SSA-destruction
  /// optimization). Queries for excluded values assert.
  bool PhiRelatedOnly = false;
};

/// The textbook bit-vector data-flow liveness LAO deliberately avoided
/// (Section 6.2: sorted arrays "proved far more memory efficient than
/// data-flow bit-vector implementations"). Provided as the third
/// comparison point: one BitVector per block over the full value
/// universe, solved with the same stack worklist; a query is a bit test.
class BitVectorDataflowLiveness : public LivenessQueries {
public:
  explicit BitVectorDataflowLiveness(const Function &F);

  bool isLiveIn(const Value &V, const BasicBlock &B) override;
  bool isLiveOut(const Value &V, const BasicBlock &B) override;
  const char *backendName() const override { return "dataflow-bitvector"; }

  size_t memoryBytes() const;

private:
  std::vector<BitVector> LiveIn;  ///< [block](value id)
  std::vector<BitVector> LiveOut; ///< [block](value id)
};

class CFG;
class DFS;

/// Solved liveness sets over one function. The solve happens in the
/// constructor; queries are lookups.
class DataflowLiveness : public LivenessQueries {
public:
  explicit DataflowLiveness(const Function &F, DataflowOptions Opts = {});

  /// Variant taking the prebuilt graph view and DFS. The benchmarks use
  /// this so the Native precomputation column times the data-flow solve
  /// itself, matching the paper's accounting (the CFG and its orderings
  /// exist in the compiler either way).
  DataflowLiveness(const Function &F, const CFG &G, const DFS &D,
                   DataflowOptions Opts = {});

  bool isLiveIn(const Value &V, const BasicBlock &B) override;
  bool isLiveOut(const Value &V, const BasicBlock &B) override;
  const char *backendName() const override { return "dataflow"; }

  /// \name Evaluation-harness introspection.
  /// @{
  /// Number of dense-universe variables.
  unsigned universeSize() const { return static_cast<unsigned>(Defs.size()); }

  /// Average elements per live-in set (paper Section 6.2 reports 3.16 for
  /// the φ-related universe, 18.52 for the full one).
  double averageLiveInFill() const;

  /// Total insertions performed while solving ("its runtime is basically
  /// bounded by the number of set insertions").
  std::uint64_t setInsertions() const { return Insertions; }

  size_t memoryBytes() const;
  /// @}

private:
  bool valueInUniverse(const Value &V) const {
    return DenseId[V.id()] != ~0u;
  }

  void build(const Function &F, const CFG &G, const DFS &D,
             DataflowOptions Opts);
  void solve(const CFG &G, const DFS &D);

  /// Dense index per value id, ~0u when outside the universe.
  std::vector<unsigned> DenseId;
  /// Per dense variable: its def block.
  std::vector<unsigned> Defs;
  /// Per block: upward-exposed variables (Definition-1 uses whose def is
  /// elsewhere), sorted.
  std::vector<std::vector<unsigned>> Gen;
  /// Solved sets, sorted dense arrays (the query-side representation).
  std::vector<SortedArraySet> LiveIn;
  std::vector<SortedArraySet> LiveOut;

  std::uint64_t Insertions = 0;
};

} // namespace ssalive

#endif // SSALIVE_LIVENESS_DATAFLOWLIVENESS_H
