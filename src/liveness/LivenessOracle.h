//===- liveness/LivenessOracle.h - Brute-force ground truth -----*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately naive decision procedure implementing the paper's
/// Definitions 2 and 3 verbatim: a live-in query runs a fresh graph search
/// from q for a def-free path to a use; a live-out query is the
/// disjunction of live-in over the successors. It shares no code or ideas
/// with the fast engine, which makes it the ground truth for the
/// cross-validation property tests.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_LIVENESS_LIVENESSORACLE_H
#define SSALIVE_LIVENESS_LIVENESSORACLE_H

#include "core/LivenessInterface.h"
#include "ir/CFG.h"
#include "ir/Function.h"

#include <vector>

namespace ssalive {

/// O(V + E) per query; testing only.
class LivenessOracle : public LivenessQueries {
public:
  explicit LivenessOracle(const Function &F)
      : F(F), G(CFG::fromFunction(F)) {}

  bool isLiveIn(const Value &V, const BasicBlock &B) override;
  bool isLiveOut(const Value &V, const BasicBlock &B) override;
  const char *backendName() const override { return "oracle"; }

  /// Block-id variants so CFG-only tests (no IR) can use the same search.
  /// Definition 2: is there a path from \p Q to a block in \p UseBlocks
  /// avoiding \p DefBlock?
  static bool liveInSearch(const CFG &G, unsigned DefBlock,
                           const std::vector<unsigned> &UseBlocks,
                           unsigned Q);
  static bool liveOutSearch(const CFG &G, unsigned DefBlock,
                            const std::vector<unsigned> &UseBlocks,
                            unsigned Q);

private:
  const Function &F;
  CFG G;
};

} // namespace ssalive

#endif // SSALIVE_LIVENESS_LIVENESSORACLE_H
