//===- liveness/LoopForestLiveness.h - Loop-forest liveness -----*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's outlook made concrete: "Our technique uses structural
/// properties of the CFG and could take advantage of a precomputed loop
/// nesting forest" (Section 8). This backend computes full live-in/live-out
/// *sets* without any data-flow iteration, using the loop-forest algorithm
/// the same group later published (Brandner, Boissinot, Darte, Dupont de
/// Dinechin, Rastello, "Computing Liveness Sets for SSA-Form Programs"):
///
///   1. one backward pass over the reduced graph (a DAG) propagates
///      partial liveness in postorder;
///   2. every value live-in at a loop header is live throughout the whole
///      loop, so a loop-forest walk unions the header's live-in set into
///      every member block.
///
/// Correct for *reducible* CFGs (the constructor asserts reducibility);
/// irreducible programs should use one of the general backends.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_LIVENESS_LOOPFORESTLIVENESS_H
#define SSALIVE_LIVENESS_LOOPFORESTLIVENESS_H

#include "core/LivenessInterface.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace ssalive {

/// Non-iterative liveness sets for reducible SSA CFGs.
class LoopForestLiveness : public LivenessQueries {
public:
  /// Solves liveness for \p F. The CFG must be reducible.
  explicit LoopForestLiveness(const Function &F);

  bool isLiveIn(const Value &V, const BasicBlock &B) override;
  bool isLiveOut(const Value &V, const BasicBlock &B) override;
  const char *backendName() const override { return "loop-forest"; }

private:
  std::vector<BitVector> LiveIn;  ///< [block](value id)
  std::vector<BitVector> LiveOut; ///< [block](value id)
};

} // namespace ssalive

#endif // SSALIVE_LIVENESS_LOOPFORESTLIVENESS_H
