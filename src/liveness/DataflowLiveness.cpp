//===- liveness/DataflowLiveness.cpp - Iterative data-flow baseline -------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "liveness/DataflowLiveness.h"

#include "analysis/DFS.h"
#include "core/UseInfo.h"
#include "ir/CFG.h"
#include "support/Debug.h"
#include "support/SparseSet.h"

#include <algorithm>

using namespace ssalive;

DataflowLiveness::DataflowLiveness(const Function &F, DataflowOptions Opts) {
  CFG G = CFG::fromFunction(F);
  DFS D(G);
  build(F, G, D, Opts);
}

DataflowLiveness::DataflowLiveness(const Function &F, const CFG &G,
                                   const DFS &D, DataflowOptions Opts) {
  build(F, G, D, Opts);
}

void DataflowLiveness::build(const Function &F, const CFG &G, const DFS &D,
                             DataflowOptions Opts) {
  // Collect the universe and assign dense indices (Section 6.2: "the
  // universe of the variables to consider is collected in a table prior to
  // liveness analysis. While doing so, variables are assigned dense
  // indices").
  DenseId.assign(F.numValues(), ~0u);
  for (const auto &VP : F.values()) {
    const Value &V = *VP;
    if (V.defs().empty())
      continue;
    if (Opts.PhiRelatedOnly && !isPhiRelated(V))
      continue;
    DenseId[V.id()] = static_cast<unsigned>(Defs.size());
    Defs.push_back(defBlockId(V));
  }

  // Per-block Gen sets: bucket the Definition-1 uses per block, then sort
  // and deduplicate in place.
  unsigned NumBlocks = F.numBlocks();
  Gen.resize(NumBlocks);
  for (const auto &VP : F.values()) {
    const Value &V = *VP;
    unsigned Dense = DenseId[V.id()];
    if (Dense == ~0u)
      continue;
    unsigned DefB = Defs[Dense];
    for (const Use &U : V.uses()) {
      unsigned UseB = liveUseBlock(U);
      if (UseB != DefB)
        Gen[UseB].push_back(Dense);
    }
  }
  for (unsigned B = 0; B != NumBlocks; ++B) {
    auto &GB = Gen[B];
    std::sort(GB.begin(), GB.end());
    GB.erase(std::unique(GB.begin(), GB.end()), GB.end());
  }

  solve(G, D);
}

void DataflowLiveness::solve(const CFG &G, const DFS &D) {
  unsigned NumBlocks = G.numNodes();
  unsigned Universe = static_cast<unsigned>(Defs.size());

  // LiveIn per block as a sorted array that only ever grows (liveness is a
  // monotone union framework), so "changed" is a size comparison.
  std::vector<std::vector<unsigned>> In(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B)
    In[B] = Gen[B];

  // Stack worklist. Seeding in reverse postorder makes the first pops
  // process blocks in postorder, i.e. successors before predecessors,
  // which is the fast direction for a backward problem.
  std::vector<unsigned> Stack;
  std::vector<bool> OnStack(NumBlocks, false);
  const auto &PostSeq = D.postorderSequence();
  for (auto It = PostSeq.rbegin(), E = PostSeq.rend(); It != E; ++It) {
    Stack.push_back(*It);
    OnStack[*It] = true;
  }

  SparseSet Out(Universe);
  std::vector<unsigned> NewVars;
  while (!Stack.empty()) {
    unsigned B = Stack.back();
    Stack.pop_back();
    OnStack[B] = false;

    // LiveOut(B) = ∪ LiveIn(S); collect with a sparse set.
    Out.clear();
    for (unsigned S : G.successors(B))
      for (unsigned V : In[S])
        Out.insert(V);

    // LiveIn(B) += LiveOut(B) \ Def(B); binary search against the sorted
    // current set, then merge the newcomers in.
    NewVars.clear();
    for (unsigned V : Out) {
      if (Defs[V] == B)
        continue;
      if (!std::binary_search(In[B].begin(), In[B].end(), V))
        NewVars.push_back(V);
    }
    if (NewVars.empty())
      continue;
    Insertions += NewVars.size();
    std::sort(NewVars.begin(), NewVars.end());
    size_t Mid = In[B].size();
    In[B].insert(In[B].end(), NewVars.begin(), NewVars.end());
    std::inplace_merge(In[B].begin(), In[B].begin() + Mid, In[B].end());

    for (unsigned P : G.predecessors(B))
      if (!OnStack[P]) {
        Stack.push_back(P);
        OnStack[P] = true;
      }
  }

  // Publish the query-side representation.
  LiveIn.resize(NumBlocks);
  LiveOut.resize(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    LiveIn[B].assign(In[B].begin(), In[B].end());
    Out.clear();
    for (unsigned S : G.successors(B))
      for (unsigned V : In[S])
        Out.insert(V);
    std::vector<unsigned> OutVec(Out.begin(), Out.end());
    LiveOut[B].assign(OutVec.begin(), OutVec.end());
  }
}

bool DataflowLiveness::isLiveIn(const Value &V, const BasicBlock &B) {
  assert(valueInUniverse(V) && "query for value outside the universe");
  return LiveIn[B.id()].contains(DenseId[V.id()]);
}

bool DataflowLiveness::isLiveOut(const Value &V, const BasicBlock &B) {
  assert(valueInUniverse(V) && "query for value outside the universe");
  return LiveOut[B.id()].contains(DenseId[V.id()]);
}

BitVectorDataflowLiveness::BitVectorDataflowLiveness(const Function &F) {
  unsigned NumBlocks = F.numBlocks();
  unsigned NumValues = F.numValues();
  CFG G = CFG::fromFunction(F);
  DFS D(G);

  std::vector<BitVector> Gen(NumBlocks, BitVector(NumValues));
  std::vector<BitVector> Kill(NumBlocks, BitVector(NumValues));
  for (const auto &VP : F.values()) {
    const Value &V = *VP;
    if (V.defs().empty())
      continue;
    unsigned DefB = defBlockId(V);
    Kill[DefB].set(V.id());
    for (const Use &U : V.uses()) {
      unsigned UseB = liveUseBlock(U);
      if (UseB != DefB)
        Gen[UseB].set(V.id());
    }
  }

  LiveIn.assign(NumBlocks, BitVector(NumValues));
  LiveOut.assign(NumBlocks, BitVector(NumValues));
  for (unsigned B = 0; B != NumBlocks; ++B)
    LiveIn[B] = Gen[B];

  std::vector<unsigned> Stack;
  std::vector<bool> OnStack(NumBlocks, false);
  const auto &PostSeq = D.postorderSequence();
  for (auto It = PostSeq.rbegin(), E = PostSeq.rend(); It != E; ++It) {
    Stack.push_back(*It);
    OnStack[*It] = true;
  }

  BitVector NewIn(NumValues);
  while (!Stack.empty()) {
    unsigned B = Stack.back();
    Stack.pop_back();
    OnStack[B] = false;

    BitVector &Out = LiveOut[B];
    Out.reset();
    for (unsigned S : G.successors(B))
      Out |= LiveIn[S];

    NewIn = Out;
    NewIn.resetAll(Kill[B]);
    NewIn |= Gen[B];
    if (NewIn == LiveIn[B])
      continue;
    LiveIn[B] = NewIn;
    for (unsigned P : G.predecessors(B))
      if (!OnStack[P]) {
        Stack.push_back(P);
        OnStack[P] = true;
      }
  }
}

bool BitVectorDataflowLiveness::isLiveIn(const Value &V,
                                         const BasicBlock &B) {
  return LiveIn[B.id()].test(V.id());
}

bool BitVectorDataflowLiveness::isLiveOut(const Value &V,
                                          const BasicBlock &B) {
  return LiveOut[B.id()].test(V.id());
}

size_t BitVectorDataflowLiveness::memoryBytes() const {
  size_t Bytes = 0;
  for (const BitVector &B : LiveIn)
    Bytes += B.memoryBytes();
  for (const BitVector &B : LiveOut)
    Bytes += B.memoryBytes();
  return Bytes;
}

double DataflowLiveness::averageLiveInFill() const {
  if (LiveIn.empty())
    return 0.0;
  std::uint64_t Total = 0;
  for (const SortedArraySet &S : LiveIn)
    Total += S.size();
  return static_cast<double>(Total) / static_cast<double>(LiveIn.size());
}

size_t DataflowLiveness::memoryBytes() const {
  size_t Bytes = 0;
  for (const SortedArraySet &S : LiveIn)
    Bytes += S.memoryBytes();
  for (const SortedArraySet &S : LiveOut)
    Bytes += S.memoryBytes();
  return Bytes;
}
