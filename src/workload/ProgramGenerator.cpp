//===- workload/ProgramGenerator.cpp - Random programs on a CFG -----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/ProgramGenerator.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "ir/CFG.h"
#include "ir/IRBuilder.h"
#include "support/Debug.h"

#include <algorithm>
#include <cmath>

using namespace ssalive;

unsigned ssalive::sampleReadCount(const ProgramGenOptions &Opts,
                                  RandomEngine &Rng) {
  double Roll = Rng.nextDouble() * 100.0;
  if (Roll < Opts.ReadsAtMost1)
    return 1;
  if (Roll < Opts.ReadsAtMost2)
    return 2;
  if (Roll < Opts.ReadsAtMost3)
    return 3;
  if (Roll < Opts.ReadsAtMost4)
    return 4;
  // Heavy tail: geometric-ish decay from 5 up to the cap.
  unsigned N = 5;
  while (N < Opts.MaxReads && Rng.chancePercent(60))
    N += 1 + Rng.nextBelow(4);
  return std::min(N, Opts.MaxReads);
}

std::unique_ptr<Function> ssalive::generateProgram(
    const CFG &G, const ProgramGenOptions &Opts, RandomEngine &Rng) {
  auto F = std::make_unique<Function>("synth");
  unsigned N = G.numNodes();
  for (unsigned V = 0; V != N; ++V)
    F->createBlock();
  for (unsigned V = 0; V != N; ++V)
    for (unsigned S : G.successors(V))
      F->block(V)->addSuccessor(F->block(S));

  DFS D(G);
  DomTree DT(G, D);
  IRBuilder B(*F);

  unsigned NumVars = std::max<unsigned>(
      2, static_cast<unsigned>(std::lround(Opts.VariablesPerBlock * N)));

  // Plan per-block accesses: (variable, define?) pairs. Placement is
  // local: each variable gets a home block and its accesses cluster
  // around it, the way source-level locals cluster in real programs.
  // Without this every variable stays live across half the procedure and
  // the per-block live sets balloon far beyond the ~3 φ-related elements
  // the paper measured (Section 6.2).
  std::vector<std::vector<std::pair<unsigned, bool>>> Payload(N);
  std::vector<std::vector<unsigned>> AccessBlocks(NumVars);
  unsigned Spread = std::max(1u, Opts.LocalitySpread);
  auto randomBlockNear = [&Rng, N, Spread, &Opts](unsigned Home) {
    if (Rng.chancePercent(Opts.FarAccessPercent))
      return Rng.nextBelow(N); // Occasional far-flung access.
    int Offset = static_cast<int>(Rng.nextBelow(2 * Spread + 1)) -
                 static_cast<int>(Spread);
    int Clamped = std::clamp(static_cast<int>(Home) + Offset, 0,
                             static_cast<int>(N) - 1);
    return static_cast<unsigned>(Clamped);
  };

  for (unsigned I = 0; I != NumVars; ++I) {
    unsigned Home = Rng.nextBelow(N);
    auto touch = [&](bool IsDef) {
      unsigned Block = randomBlockNear(Home);
      Payload[Block].emplace_back(I, IsDef);
      AccessBlocks[I].push_back(Block);
    };
    while (Rng.chancePercent(Opts.RedefinePercent))
      touch(/*IsDef=*/true);
    unsigned Reads;
    if (Rng.nextBelow(100000) < Opts.MegaVariablePer100k)
      Reads = Opts.MaxReads / 2 + Rng.nextBelow(Opts.MaxReads / 2 + 1);
    else
      Reads = sampleReadCount(Opts, Rng);
    for (unsigned R = 0; R != Reads; ++R)
      touch(/*IsDef=*/false);
  }

  // Each variable is initialized in the nearest common dominator of its
  // accesses, which keeps the program strict while confining live ranges
  // to the region that actually touches the variable. A handful of
  // entry-defined "globals" serve as branch operands everywhere (loop
  // bounds and the like).
  std::vector<unsigned> InitBlock(NumVars, G.entry());
  for (unsigned I = 0; I != NumVars; ++I) {
    const auto &Blocks = AccessBlocks[I];
    if (Blocks.empty())
      continue;
    unsigned Dom = Blocks.front();
    for (unsigned Acc : Blocks)
      while (!DT.dominates(Dom, Acc))
        Dom = DT.idom(Dom);
    InitBlock[I] = Dom;
  }
  unsigned NumGlobals = std::min<unsigned>(4, NumVars);
  for (unsigned I = 0; I != NumGlobals; ++I)
    InitBlock[I] = G.entry();

  /// Picks a variable readable at \p Block: prefer one whose init
  /// dominates the block; fall back to a global.
  auto readableVar = [&](unsigned Block) {
    for (unsigned Try = 0; Try != 4; ++Try) {
      unsigned V = Rng.nextBelow(NumVars);
      if (DT.dominates(InitBlock[V], Block))
        return V;
    }
    return Rng.nextBelow(NumGlobals);
  };

  // Create the variable values up front; defs attach during emission.
  std::vector<Value *> Vars(NumVars, nullptr);

  // Emit blocks in dominance-tree preorder so a variable's initialization
  // (which dominates all its accesses) is materialized before any access
  // to it: per block, parameters (entry), then initializations, then the
  // planned accesses, then the terminator.
  Value *P0 = nullptr, *P1 = nullptr;
  for (unsigned Num = 0; Num != N; ++Num) {
    unsigned BlockId = DT.nodeAtNum(Num);
    BasicBlock *Block = F->block(BlockId);
    B.setInsertBlock(Block);

    if (BlockId == G.entry()) {
      P0 = B.createParam(0, "p0");
      P1 = B.createParam(1, "p1");
    }

    for (unsigned I = 0; I != NumVars; ++I) {
      if (InitBlock[I] != BlockId)
        continue;
      if (I < NumGlobals && Rng.chancePercent(60))
        Vars[I] =
            B.createBinary(Opcode::Add, P0, P1, "var" + std::to_string(I));
      else
        Vars[I] = B.createConst(
            static_cast<std::int64_t>(Rng.nextBelow(1000)),
            "var" + std::to_string(I));
    }

    std::vector<Value *> PendingReads;
    for (auto [VarIdx, IsDef] : Payload[BlockId]) {
      if (!IsDef) {
        PendingReads.push_back(Vars[VarIdx]);
        if (PendingReads.size() >= 3) {
          B.createOpaque(PendingReads);
          PendingReads.clear();
        }
        continue;
      }
      // Redefinition: arithmetic over this variable and either a fresh
      // constant (common — keeps single-use values plentiful, like real
      // temporaries) or another variable readable here. The result
      // instruction redefines the same Value, making it multi-def.
      Value *Other = Rng.chancePercent(60)
                         ? B.createConst(static_cast<std::int64_t>(
                               1 + Rng.nextBelow(64)))
                         : Vars[readableVar(BlockId)];
      Opcode Op = Rng.chancePercent(50) ? Opcode::Add : Opcode::Sub;
      Value *Tmp = B.createBinary(Op, Vars[VarIdx], Other);
      // Rebind: replace the fresh result with the variable itself.
      Instruction *Def = Tmp->ssaDef();
      Def->setResult(Vars[VarIdx]);
    }
    if (!PendingReads.empty())
      B.createOpaque(PendingReads);

    unsigned Degree = static_cast<unsigned>(G.successors(BlockId).size());
    if (Degree == 0) {
      // The exit returns an observation over the globals so the
      // interpreter sees real dataflow on every run.
      std::vector<Value *> Obs;
      for (unsigned I = 0; I != NumGlobals; ++I)
        Obs.push_back(Vars[I]);
      Value *Ret = B.createOpaque(Obs, "retval");
      Block->append(std::make_unique<Instruction>(
          Opcode::Ret, nullptr, std::vector<Value *>{Ret}));
    } else if (Degree == 1) {
      Block->append(std::make_unique<Instruction>(Opcode::Jump, nullptr,
                                                  std::vector<Value *>{}));
    } else {
      assert(Degree == 2 && "generator produces at most two successors");
      // Branch on a varying comparison so the interpreter explores paths;
      // one side is usually a fresh constant, as loop bounds tend to be.
      Value *L = Vars[readableVar(BlockId)];
      Value *R = Rng.chancePercent(60)
                     ? B.createConst(static_cast<std::int64_t>(
                           Rng.nextBelow(512)))
                     : Vars[readableVar(BlockId)];
      Value *Cond = B.createBinary(Opcode::CmpLt, L, R);
      Block->append(std::make_unique<Instruction>(
          Opcode::Branch, nullptr, std::vector<Value *>{Cond}));
    }
  }
  return F;
}
