//===- workload/CFGGenerator.h - Random structured CFGs ---------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random control-flow graph generation. The core generator derives graphs
/// from a structured-programming grammar (sequences, if/if-else, while,
/// do-while, self loops, break/continue), which yields exactly the class of
/// reducible CFGs the paper's Section 2.1 discusses; an optional "goto"
/// pass injects extra edges that may create irreducible regions, matching
/// the rare irreducibility the paper measures (60 of 238427 edges).
/// Invariants maintained for IR population: node 0 is the entry, every node
/// has at most two successors, exactly one node (the exit) has none, and
/// there are no duplicate edges.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_WORKLOAD_CFGGENERATOR_H
#define SSALIVE_WORKLOAD_CFGGENERATOR_H

#include "ir/CFG.h"
#include "support/RandomEngine.h"

namespace ssalive {

/// Knobs for the structured generator.
struct CFGGenOptions {
  /// Approximate number of nodes to produce (the grammar stops expanding
  /// once the budget is consumed; a handful of joins may exceed it).
  unsigned TargetBlocks = 30;
  /// Maximum construct nesting depth.
  unsigned MaxNesting = 8;
  /// Per-construct percentages (the remainder becomes straight-line code).
  /// The defaults reproduce the paper's corpus shape: ~1.3 edges per block
  /// with back edges around 3-5% of all edges (Section 6.1).
  unsigned LoopPercent = 14;
  unsigned BranchPercent = 52;
  /// Chance that a straight-line step inside a loop becomes a break or
  /// continue branch.
  unsigned BreakContinuePercent = 15;
  /// Extra arbitrary forward/backward edges injected after structured
  /// generation ("gotos"); each may make the graph irreducible.
  unsigned GotoEdges = 0;
};

/// Generates one CFG. Deterministic in (\p Opts, \p Rng state).
CFG generateCFG(const CFGGenOptions &Opts, RandomEngine &Rng);

} // namespace ssalive

#endif // SSALIVE_WORKLOAD_CFGGENERATOR_H
