//===- workload/SpecProfile.cpp - SPEC2000int workload profiles -----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/SpecProfile.h"

#include "support/Debug.h"

#include <algorithm>
#include <cmath>

using namespace ssalive;

// Columns: Name, Procs, AvgBlocks, SumBlocks, %<=32, %<=64, MaxUses,
// %uses<=1..4, then Table 2: precomp native/new/spdup, queries,
// query native/new/spdup, both-spdup. All values transcribed from the
// paper's Tables 1 and 2.
static const std::vector<SpecProfile> Profiles = {
    {"164.gzip", 82, 33.35, 2735, 69.51, 85.36, 51, 65.64, 86.38, 92.81,
     95.94, 174000.82, 55054.62, 3.12, 90659, 86.84, 162.23, 0.53, 1.16},
    {"175.vpr", 225, 34.45, 7752, 68.88, 84.44, 75, 70.36, 88.90, 93.93,
     96.28, 116963.18, 54291.50, 2.17, 55670, 85.71, 179.38, 0.48, 1.41},
    {"176.gcc", 2019, 38.96, 78666, 72.85, 86.03, 422, 73.99, 87.81, 92.42,
     94.84, 205923.64, 67310.79, 3.03, 1109202, 88.17, 339.54, 0.26, 1.00},
    {"181.mcf", 26, 20.31, 528, 84.61, 100.00, 46, 66.91, 83.50, 89.33,
     94.46, 65544.73, 35696.62, 1.85, 2369, 84.09, 190.37, 0.44, 1.39},
    {"186.crafty", 109, 69.28, 7551, 59.63, 76.14, 620, 72.98, 90.09, 93.85,
     95.75, 437037.94, 156418.57, 2.78, 858121, 81.07, 166.14, 0.49, 0.73},
    {"197.parser", 323, 23.60, 7623, 84.82, 93.49, 96, 65.12, 86.75, 94.26,
     96.62, 85194.79, 40392.45, 2.13, 38719, 86.54, 177.81, 0.49, 1.54},
    {"254.gap", 852, 32.89, 28020, 67.60, 87.44, 156, 70.46, 85.95, 91.26,
     94.54, 191000.39, 55515.27, 3.45, 245540, 87.38, 168.82, 0.52, 2.08},
    {"255.vortex", 923, 26.46, 24425, 77.57, 90.68, 254, 65.99, 90.80,
     95.02, 96.97, 71444.18, 42651.30, 1.67, 88554, 85.09, 187.21, 0.45,
     1.32},
    {"256.bzip2", 74, 22.97, 1700, 78.37, 91.89, 36, 69.89, 89.89, 94.47,
     96.17, 137544.10, 40178.87, 3.45, 10100, 95.00, 184.86, 0.51, 2.32},
    {"300.twolf", 190, 56.97, 10825, 59.47, 77.36, 165, 69.71, 87.59, 93.23,
     95.92, 446186.87, 94197.44, 4.76, 184621, 94.89, 193.81, 0.49, 1.92},
};

static const SpecProfile TotalRow = {
    "Total",   4823,  35.21,    169825,   72.71, 87.18,   620,
    71.30,     87.85, 92.76,    95.31,    177655.50, 60375.69, 2.94,
    2683555,   86.09, 241.06,   0.36,     1.16};

const std::vector<SpecProfile> &ssalive::spec2000Profiles() {
  return Profiles;
}

const SpecProfile &ssalive::spec2000TotalRow() { return TotalRow; }

double ssalive::inverseNormalCDF(double P) {
  assert(P > 0.0 && P < 1.0 && "probability out of range");
  // Acklam's rational approximation, relative error < 1.15e-9.
  static const double A[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double B[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double C[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double D[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double PLow = 0.02425;
  double Q, R;
  if (P < PLow) {
    Q = std::sqrt(-2 * std::log(P));
    return (((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
            C[5]) /
           ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1);
  }
  if (P <= 1 - PLow) {
    Q = P - 0.5;
    R = Q * Q;
    return (((((A[0] * R + A[1]) * R + A[2]) * R + A[3]) * R + A[4]) * R +
            A[5]) *
           Q /
           (((((B[0] * R + B[1]) * R + B[2]) * R + B[3]) * R + B[4]) * R + 1);
  }
  Q = std::sqrt(-2 * std::log(1 - P));
  return -(((((C[0] * Q + C[1]) * Q + C[2]) * Q + C[3]) * Q + C[4]) * Q +
           C[5]) /
         ((((D[0] * Q + D[1]) * Q + D[2]) * Q + D[3]) * Q + 1);
}

unsigned ssalive::sampleBlockCount(const SpecProfile &P, RandomEngine &Rng) {
  // Fit ln X ~ N(Mu, Sigma) through the two quantile columns:
  //   Phi((ln 32 - Mu) / Sigma) = PctBlocksLe32 / 100
  //   Phi((ln 64 - Mu) / Sigma) = PctBlocksLe64 / 100
  double P32 = std::clamp(P.PctBlocksLe32 / 100.0, 0.01, 0.98);
  double P64 = std::clamp(P.PctBlocksLe64 / 100.0, P32 + 0.005, 0.99);
  double Z32 = inverseNormalCDF(P32);
  double Z64 = inverseNormalCDF(P64);
  double Ln32 = std::log(32.0);
  double Ln64 = std::log(64.0);
  double Sigma = (Ln64 - Ln32) / (Z64 - Z32);
  double Mu = Ln32 - Sigma * Z32;

  // Box-Muller from two uniform draws.
  double U1 = std::max(Rng.nextDouble(), 1e-12);
  double U2 = Rng.nextDouble();
  double Normal =
      std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  double X = std::exp(Mu + Sigma * Normal);
  if (X < 4.0)
    return 4;
  if (X > static_cast<double>(MaxBlocksObserved))
    return MaxBlocksObserved;
  return static_cast<unsigned>(std::lround(X));
}
