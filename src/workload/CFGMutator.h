//===- workload/CFGMutator.h - Random structural CFG edits ------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized structural mutation of existing CFGs (and of IR functions'
/// block graphs): edge insertion, edge removal, branch retargeting, and
/// block splitting. This is the driver of the incremental-analysis
/// differential fuzz suite — every mutation lands in the owner's delta
/// journal, the incremental plane (DFS::recompute, DomTree::applyUpdates,
/// LiveCheck::update, AnalysisManager::refresh) consumes it, and the suite
/// asserts the repaired analyses answer exactly like a from-scratch
/// rebuild, in the spirit of Barany's liveness-driven random program
/// generation.
///
/// Two modes: the reducibility-preserving mode only applies edits that
/// provably or verifiably keep the CFG reducible (the regime of the
/// paper's corpus and of the Theorem-2 fast path), while the general mode
/// admits arbitrary edits including irreducibility-creating ones. Both
/// modes maintain the one invariant every analysis requires: all nodes
/// stay reachable from the entry (candidate edits that would break it are
/// rolled back — the rollbacks deliberately remain in the journal, so
/// multi-delta batches get exercised too).
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_WORKLOAD_CFGMUTATOR_H
#define SSALIVE_WORKLOAD_CFGMUTATOR_H

#include "ir/CFG.h"
#include "support/RandomEngine.h"

#include <optional>

namespace ssalive {

class Function;

/// The four structural edit shapes.
enum class MutationKind : unsigned char {
  AddEdge,        ///< New edge From -> To.
  RemoveEdge,     ///< Existing edge From -> To removed.
  RetargetBranch, ///< Edge From -> To moved to From -> To2.
  SplitBlock,     ///< From's out-edges moved to new node To; From -> To.
};

/// One applied mutation, for replay diagnostics.
struct Mutation {
  MutationKind Kind;
  unsigned From = 0;
  unsigned To = 0;
  unsigned To2 = 0; ///< RetargetBranch only: the new target.
};

/// Knobs for the mutator.
struct CFGMutatorOptions {
  /// Only apply edits that keep the graph reducible (verified; candidates
  /// that break it are rolled back and retried).
  bool PreserveReducibility = false;
  /// SplitBlock stops proposing once the graph reaches this many nodes.
  unsigned MaxNodes = 4096;
  /// Mutation mix, in percent; the remainder becomes SplitBlock.
  unsigned AddEdgePercent = 35;
  unsigned RemoveEdgePercent = 25;
  unsigned RetargetPercent = 30;
  /// When nonzero, new edge targets are drawn within this dominance-
  /// preorder distance of the edit site instead of uniformly — the
  /// localized rewiring a transform pass actually does (jump threading,
  /// branch simplification, loop edits), as opposed to the fuzzer's
  /// adversarial global edits. 0 = uniform.
  unsigned LocalityWindow = 0;
};

/// Applies one random structural mutation to \p G (journaled through the
/// CFG's normal mutators). Returns the applied mutation, or std::nullopt
/// when no applicable edit was found within the retry budget.
std::optional<Mutation> mutateCFG(CFG &G, RandomEngine &Rng,
                                  const CFGMutatorOptions &Opts = {});

/// The IR-level sibling: same edit distribution against \p F's block
/// graph (BasicBlock::addSuccessor/removeSuccessor, Function::createBlock,
/// so the function's delta journal records the batch). The edit is chosen
/// on a scratch graph copy first, so rejected candidates never touch the
/// function — its journal receives exactly the clean applied deltas.
/// Liveness-analysis invariants are maintained (reachability; φ operand
/// lists stay parallel to shrinking predecessor lists); full IR executable
/// well-formedness (terminator shapes) is not, which the analyses never
/// inspect.
std::optional<Mutation> mutateFunctionCFG(Function &F, RandomEngine &Rng,
                                          const CFGMutatorOptions &Opts = {});

/// Replays an already-chosen mutation against \p F's block graph — the
/// application half of mutateFunctionCFG, exported on its own because it is
/// a *deterministic* function of (F, M): two copies of the same function
/// fed the same mutation sequence end up with identical block graphs, φ
/// operand lists, and delta journals. The liveness server's CFG-edit
/// command and the differential soak/fuzz clients rely on exactly this to
/// keep a remote session and a local oracle in lockstep. Returns false
/// (leaving \p F untouched) when \p M does not apply — an edge endpoint out
/// of range, a RemoveEdge/RetargetBranch naming a non-edge, an AddEdge that
/// already exists, or a SplitBlock whose new-block id is not numBlocks().
bool applyFunctionMutation(Function &F, const Mutation &M);

} // namespace ssalive

#endif // SSALIVE_WORKLOAD_CFGMUTATOR_H
