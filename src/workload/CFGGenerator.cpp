//===- workload/CFGGenerator.cpp - Random structured CFGs -----------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/CFGGenerator.h"

#include "support/Debug.h"

#include <algorithm>

using namespace ssalive;

namespace {

/// Builds adjacency lists from the construct grammar, then converts to CFG.
class StructuredBuilder {
public:
  StructuredBuilder(const CFGGenOptions &Opts, RandomEngine &Rng)
      : Opts(Opts), Rng(Rng) {}

  CFG build();

private:
  static constexpr unsigned NoBlock = ~0u;

  unsigned newNode() {
    Succ.emplace_back();
    if (Budget != 0)
      --Budget;
    return static_cast<unsigned>(Succ.size() - 1);
  }

  bool hasEdge(unsigned From, unsigned To) const {
    const auto &S = Succ[From];
    return std::find(S.begin(), S.end(), To) != S.end();
  }

  void connect(unsigned From, unsigned To) {
    assert(Succ[From].size() < 2 && "node already has two successors");
    assert(!hasEdge(From, To) && "duplicate edge");
    Succ[From].push_back(To);
  }

  /// Emits control flow from \p From to \p To. Owns all outgoing edges of
  /// \p From. \p Header/\p Exit give the innermost enclosing loop for
  /// break/continue, or NoBlock.
  void region(unsigned From, unsigned To, unsigned Depth, unsigned Header,
              unsigned Exit);

  const CFGGenOptions &Opts;
  RandomEngine &Rng;
  std::vector<std::vector<unsigned>> Succ;
  unsigned Budget = 0;
};

} // namespace

void StructuredBuilder::region(unsigned From, unsigned To, unsigned Depth,
                               unsigned Header, unsigned Exit) {
  if (Budget == 0 || Depth >= Opts.MaxNesting) {
    connect(From, To);
    return;
  }

  // break/continue: turn this step into a two-way branch whose second arm
  // leaves or restarts the innermost loop.
  if (Header != NoBlock && Rng.chancePercent(Opts.BreakContinuePercent)) {
    unsigned Target = Rng.chancePercent(50) ? Exit : Header;
    if (Target != To && !hasEdge(From, Target)) {
      unsigned Next = newNode();
      connect(From, Next);
      connect(From, Target);
      region(Next, To, Depth, Header, Exit);
      return;
    }
  }

  unsigned Roll = Rng.nextBelow(100);
  if (Roll < Opts.LoopPercent && Budget >= 3) {
    if (Rng.chancePercent(15)) {
      // Self loop: N -> N plus fall-through.
      unsigned N = newNode();
      connect(From, N);
      connect(N, N);
      unsigned Next = newNode();
      connect(N, Next);
      region(Next, To, Depth, Header, Exit);
      return;
    }
    if (Rng.chancePercent(50)) {
      // While loop: H branches to body or past the loop.
      unsigned H = newNode();
      unsigned Body = newNode();
      unsigned After = newNode();
      connect(From, H);
      connect(H, Body);
      connect(H, After);
      region(Body, H, Depth + 1, H, After); // Final edge back to H.
      region(After, To, Depth, Header, Exit);
      return;
    }
    // Do-while loop: body runs at least once, C branches back or out.
    unsigned Body = newNode();
    unsigned C = newNode();
    unsigned After = newNode();
    connect(From, Body);
    connect(C, Body); // Back edge.
    connect(C, After);
    region(Body, C, Depth + 1, Body, After);
    region(After, To, Depth, Header, Exit);
    return;
  }

  if (Roll < Opts.LoopPercent + Opts.BranchPercent && Budget >= 3) {
    if (Rng.chancePercent(50)) {
      // If-then-else.
      unsigned T = newNode();
      unsigned E = newNode();
      unsigned Join = newNode();
      connect(From, T);
      connect(From, E);
      region(T, Join, Depth + 1, Header, Exit);
      region(E, Join, Depth + 1, Header, Exit);
      region(Join, To, Depth, Header, Exit);
      return;
    }
    // If-then.
    unsigned T = newNode();
    unsigned Join = newNode();
    connect(From, T);
    connect(From, Join);
    region(T, Join, Depth + 1, Header, Exit);
    region(Join, To, Depth, Header, Exit);
    return;
  }

  // Straight-line step.
  unsigned Next = newNode();
  connect(From, Next);
  region(Next, To, Depth, Header, Exit);
}

CFG StructuredBuilder::build() {
  Budget = Opts.TargetBlocks > 2 ? Opts.TargetBlocks - 2 : 1;
  unsigned Entry = newNode();
  unsigned Exit = newNode();
  assert(Entry == 0 && "entry must be node 0");
  region(Entry, Exit, 0, NoBlock, NoBlock);

  // Goto injection: random extra edges from one-successor nodes. These can
  // produce loops with multiple entries, i.e. irreducible control flow.
  unsigned N = static_cast<unsigned>(Succ.size());
  for (unsigned I = 0; I < Opts.GotoEdges; ++I) {
    for (unsigned Attempt = 0; Attempt != 16; ++Attempt) {
      unsigned From = Rng.nextBelow(N);
      unsigned To = Rng.nextBelow(N);
      if (From == Exit || Succ[From].size() != 1 || To == Entry ||
          hasEdge(From, To))
        continue;
      connect(From, To);
      break;
    }
  }

  CFG G(N);
  for (unsigned V = 0; V != N; ++V)
    for (unsigned S : Succ[V])
      G.addEdge(V, S);
  return G;
}

CFG ssalive::generateCFG(const CFGGenOptions &Opts, RandomEngine &Rng) {
  return StructuredBuilder(Opts, Rng).build();
}
