//===- workload/SpecProfile.h - SPEC2000int workload profiles ---*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-benchmark profiles of the paper's evaluation corpus: the ten
/// SPEC2000 integer programs the LAO compiler built (Tables 1 and 2). Since
/// neither LAO nor its SPEC builds are available, the profiles drive the
/// synthetic workload: procedure counts and block-count distributions are
/// matched per benchmark, and every paper-reported number is carried along
/// as the reference value the harnesses print next to the measured one.
/// DESIGN.md Section 2 documents this substitution.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_WORKLOAD_SPECPROFILE_H
#define SSALIVE_WORKLOAD_SPECPROFILE_H

#include "support/RandomEngine.h"

#include <cstdint>
#include <vector>

namespace ssalive {

/// One benchmark row of Tables 1 and 2.
struct SpecProfile {
  const char *Name;

  /// \name Table 1 (quantitative) reference values.
  /// @{
  unsigned Procedures;     ///< Compiled procedures (Table 2 "# Proc.").
  double AvgBlocks;        ///< Average basic blocks per procedure.
  unsigned SumBlocks;      ///< Total basic blocks.
  double PctBlocksLe32;    ///< % procedures with <= 32 blocks.
  double PctBlocksLe64;    ///< % procedures with <= 64 blocks.
  unsigned MaxUses;        ///< Table 1 "Maximum": most uses of one
                           ///< variable (620 in 186.crafty; the prose puts
                           ///< the largest *block* count at 2240).
  double PctUsesLe1;       ///< % variables with <= 1 use (cumulative).
  double PctUsesLe2;
  double PctUsesLe3;
  double PctUsesLe4;
  /// @}

  /// \name Table 2 (runtime) reference values.
  /// @{
  double PaperPrecompNative; ///< Avg cycles/proc, native data-flow.
  double PaperPrecompNew;    ///< Avg cycles/proc, the paper's technique.
  double PaperPrecompSpdup;
  std::uint64_t PaperQueries;
  double PaperQueryNative; ///< Avg cycles/query, native.
  double PaperQueryNew;
  double PaperQuerySpdup;
  double PaperBothSpdup; ///< Combined precomputation + queries speedup.
  /// @}
};

/// The ten benchmark profiles in Table order (164.gzip ... 300.twolf).
const std::vector<SpecProfile> &spec2000Profiles();

/// Aggregate "Total" row reference values from the paper.
const SpecProfile &spec2000TotalRow();

/// Samples a per-procedure block count whose distribution matches the
/// profile's %<=32 and %<=64 columns (log-normal fitted through the two
/// quantiles, clamped to [4, 2240] — the paper's largest observed
/// procedure, Section 6.1).
unsigned sampleBlockCount(const SpecProfile &P, RandomEngine &Rng);

/// The largest procedure the paper's corpus contained (Section 6.1).
constexpr unsigned MaxBlocksObserved = 2240;

/// Inverse standard normal CDF (Acklam's rational approximation); exposed
/// for tests of the sampler calibration.
double inverseNormalCDF(double P);

} // namespace ssalive

#endif // SSALIVE_WORKLOAD_SPECPROFILE_H
