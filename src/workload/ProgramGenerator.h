//===- workload/ProgramGenerator.h - Random programs on a CFG ---*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Populates a generated CFG with a strict imperative (non-SSA) program:
/// every variable is initialized in the entry block, then redefined and
/// read across the graph with sampled frequencies. Running SSAConstruction
/// on the result yields the strict SSA inputs the evaluation needs, with φs
/// at the joins the redefinitions induce. Read counts are sampled from a
/// bucketed distribution so the synthesized corpus can be calibrated
/// against the paper's Table 1 uses-per-variable columns.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_WORKLOAD_PROGRAMGENERATOR_H
#define SSALIVE_WORKLOAD_PROGRAMGENERATOR_H

#include "ir/Function.h"
#include "support/RandomEngine.h"

#include <memory>

namespace ssalive {

class CFG;

/// Knobs for program population.
struct ProgramGenOptions {
  /// Variables per CFG node (the paper's procedures average a few live
  /// values per block; 1.5–2.5 reproduces LAO-like densities).
  double VariablesPerBlock = 2.0;
  /// Chance that a variable gets one extra definition, applied repeatedly
  /// (geometric number of redefinitions).
  unsigned RedefinePercent = 40;
  /// Cumulative percentages of variables with at most 1/2/3/4 reads;
  /// defaults match the paper's Table 1 "Total" row (71.30 / 87.85 /
  /// 92.76 / 95.31).
  double ReadsAtMost1 = 71.30;
  double ReadsAtMost2 = 87.85;
  double ReadsAtMost3 = 92.76;
  double ReadsAtMost4 = 95.31;
  /// Cap for the heavy tail (Table 1 saw up to 620 uses).
  unsigned MaxReads = 64;
  /// Per-100k chance that a variable is a "mega" user drawing its read
  /// count uniformly from [MaxReads/2, MaxReads]; models the rare extreme
  /// outliers behind Table 1's Maximum column.
  unsigned MegaVariablePer100k = 30;
  /// How far (in block-id distance) a variable's accesses stray from its
  /// home block. Constant, not proportional to the function size: local
  /// variables cluster the same way in big and small functions, which is
  /// what keeps per-block live sets small (paper Section 6.2).
  unsigned LocalitySpread = 4;
  /// Chance that a single access ignores locality and lands anywhere;
  /// models the occasional function-spanning value.
  unsigned FarAccessPercent = 5;
};

/// Builds a function over \p G: blocks mirror nodes, terminators mirror
/// out-degrees (0 = ret, 1 = jump, 2 = branch). The program is strict and
/// φ-free. Deterministic in (\p G, \p Opts, \p Rng state).
std::unique_ptr<Function> generateProgram(const CFG &G,
                                          const ProgramGenOptions &Opts,
                                          RandomEngine &Rng);

/// Samples a read count from the bucketed Table-1-style distribution.
unsigned sampleReadCount(const ProgramGenOptions &Opts, RandomEngine &Rng);

} // namespace ssalive

#endif // SSALIVE_WORKLOAD_PROGRAMGENERATOR_H
