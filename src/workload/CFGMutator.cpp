//===- workload/CFGMutator.cpp - Random structural CFG edits --------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/CFGMutator.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "analysis/Reducibility.h"
#include "ir/Function.h"

#include <algorithm>

using namespace ssalive;

namespace {

/// All nodes reachable from the entry?
bool allReachable(const CFG &G) {
  unsigned N = G.numNodes();
  if (N == 0)
    return true;
  std::vector<bool> Seen(N, false);
  std::vector<unsigned> Work{G.entry()};
  Seen[G.entry()] = true;
  unsigned Count = 1;
  while (!Work.empty()) {
    unsigned V = Work.back();
    Work.pop_back();
    for (unsigned S : G.successors(V))
      if (!Seen[S]) {
        Seen[S] = true;
        ++Count;
        Work.push_back(S);
      }
  }
  return Count == N;
}

bool isReducible(const CFG &G) {
  DFS D(G);
  DomTree DT(G, D);
  return analyzeReducibility(D, DT).Reducible;
}

/// Picks a random existing edge, or nullopt when the graph has none.
std::optional<std::pair<unsigned, unsigned>> pickEdge(const CFG &G,
                                                      RandomEngine &Rng) {
  unsigned E = G.numEdges();
  if (E == 0)
    return std::nullopt;
  unsigned Pick = Rng.nextBelow(E);
  for (unsigned V = 0; V != G.numNodes(); ++V) {
    const auto &S = G.successors(V);
    if (Pick < S.size())
      return std::make_pair(V, S[Pick]);
    Pick -= static_cast<unsigned>(S.size());
  }
  return std::nullopt;
}

/// One proposal round; applies and returns a mutation, or rolls back and
/// returns nullopt. \p DT is the pre-edit dominator tree when the options
/// need one (reducibility bias, locality window), else null.
std::optional<Mutation> proposeOnce(CFG &G, RandomEngine &Rng,
                                    const CFGMutatorOptions &Opts,
                                    const DomTree *DT) {
  unsigned N = G.numNodes();
  if (N < 2)
    return std::nullopt;
  unsigned Roll = Rng.nextBelow(100);
  unsigned AddCut = Opts.AddEdgePercent;
  unsigned RemoveCut = AddCut + Opts.RemoveEdgePercent;
  unsigned RetargetCut = RemoveCut + Opts.RetargetPercent;

  // Structural proximity sampling (see LocalityWindow): the candidate is
  // drawn from the dominance subtree of an ancestor a few idom steps
  // above the edit site — the enclosing construct a transform pass
  // actually rewires within — capped to LocalityWindow preorder distance.
  auto pickNear = [&](unsigned Site) {
    if (!DT || Opts.LocalityWindow == 0)
      return Rng.nextBelow(N);
    unsigned Hoist = 1 + Rng.nextBelow(3);
    unsigned A = Site;
    for (unsigned H = 0; H != Hoist && DT->idom(A) != A; ++H)
      A = DT->idom(A);
    unsigned Lo = DT->num(A);
    unsigned Hi = DT->maxnum(A);
    unsigned W = Opts.LocalityWindow;
    unsigned SiteNum = DT->num(Site);
    if (SiteNum > W && Lo < SiteNum - W)
      Lo = SiteNum - W;
    if (Hi > SiteNum + W)
      Hi = SiteNum + W;
    return DT->nodeAtNum(Rng.nextInRange(Lo, Hi));
  };

  if (Roll < AddCut) {
    unsigned From = Rng.nextBelow(N);
    unsigned To;
    if (DT && Opts.PreserveReducibility && Rng.chancePercent(50)) {
      // Back edge to a dominator: provably keeps the dominator tree and
      // every existing DFS edge classification intact, hence reducibility
      // (the new edge's target dominates its source by construction).
      std::vector<unsigned> Doms;
      for (unsigned V = From;; V = DT->idom(V)) {
        Doms.push_back(V);
        if (DT->idom(V) == V)
          break;
      }
      To = Doms[Rng.nextBelow(static_cast<unsigned>(Doms.size()))];
    } else {
      To = pickNear(From);
    }
    if (G.hasEdge(From, To))
      return std::nullopt;
    G.addEdge(From, To); // Reachability can only improve.
    if (Opts.PreserveReducibility && !isReducible(G)) {
      G.removeEdge(From, To);
      return std::nullopt;
    }
    return Mutation{MutationKind::AddEdge, From, To, 0};
  }

  if (Roll < RemoveCut) {
    auto E = pickEdge(G, Rng);
    if (!E)
      return std::nullopt;
    auto [From, To] = *E;
    G.removeEdge(From, To);
    // Removal cannot break reducibility (cycles only disappear and
    // dominance only grows), but it can orphan nodes.
    if (!allReachable(G)) {
      G.addEdge(From, To);
      return std::nullopt;
    }
    return Mutation{MutationKind::RemoveEdge, From, To, 0};
  }

  if (Roll < RetargetCut) {
    auto E = pickEdge(G, Rng);
    if (!E)
      return std::nullopt;
    auto [From, To] = *E;
    unsigned To2 = pickNear(To);
    if (To2 == To || G.hasEdge(From, To2))
      return std::nullopt;
    G.removeEdge(From, To);
    G.addEdge(From, To2);
    if (!allReachable(G) ||
        (Opts.PreserveReducibility && !isReducible(G))) {
      G.removeEdge(From, To2);
      G.addEdge(From, To);
      return std::nullopt;
    }
    return Mutation{MutationKind::RetargetBranch, From, To, To2};
  }

  // SplitBlock: a new node takes over From's out-edges.
  if (N >= Opts.MaxNodes)
    return std::nullopt;
  unsigned From = Rng.nextBelow(N);
  if (G.successors(From).empty())
    return std::nullopt;
  unsigned NewNode = N;
  G.resize(N + 1);
  std::vector<unsigned> Moved = G.successors(From);
  for (unsigned S : Moved)
    G.removeEdge(From, S);
  for (unsigned S : Moved)
    G.addEdge(NewNode, S);
  G.addEdge(From, NewNode);
  // Splitting subdivides paths, so reachability and reducibility both
  // survive: every path only gains the new node, dominance among old
  // nodes is untouched, and a cycle's header dominates the inserted node
  // because it dominates the split node.
  return Mutation{MutationKind::SplitBlock, From, NewNode, 0};
}

} // namespace

std::optional<Mutation> ssalive::mutateCFG(CFG &G, RandomEngine &Rng,
                                           const CFGMutatorOptions &Opts) {
  // One pre-edit dominator tree serves every proposal: failed proposals
  // roll the graph back, so the tree stays valid until a success returns.
  std::unique_ptr<DFS> D;
  std::unique_ptr<DomTree> DT;
  if (Opts.PreserveReducibility || Opts.LocalityWindow != 0) {
    D = std::make_unique<DFS>(G);
    DT = std::make_unique<DomTree>(G, *D);
  }
  for (unsigned Try = 0; Try != 48; ++Try)
    if (auto M = proposeOnce(G, Rng, Opts, DT.get()))
      return M;
  return std::nullopt;
}

bool ssalive::applyFunctionMutation(Function &F, const Mutation &M) {
  unsigned N = F.numBlocks();
  auto hasBlockEdge = [&F](unsigned From, unsigned To) {
    for (const BasicBlock *S : F.block(From)->successors())
      if (S->id() == To)
        return true;
    return false;
  };
  // Validate before touching anything: a rejected mutation must leave the
  // function (and its journal) byte-identical, or a server session fed a
  // garbage edit would drift from the client that mirrors the rejection.
  switch (M.Kind) {
  case MutationKind::AddEdge:
    if (M.From >= N || M.To >= N || hasBlockEdge(M.From, M.To))
      return false;
    break;
  case MutationKind::RemoveEdge:
    if (M.From >= N || M.To >= N || !hasBlockEdge(M.From, M.To))
      return false;
    break;
  case MutationKind::RetargetBranch:
    if (M.From >= N || M.To >= N || M.To2 >= N ||
        !hasBlockEdge(M.From, M.To) || M.To == M.To2 ||
        hasBlockEdge(M.From, M.To2))
      return false;
    break;
  case MutationKind::SplitBlock:
    if (M.From >= N || M.To != N || F.block(M.From)->successors().empty())
      return false;
    break;
  }
  // Edge removals can orphan nodes, and every analysis assumes all nodes
  // reachable; simulate the edit on a scratch graph before committing.
  // AddEdge and SplitBlock cannot hurt reachability.
  if (M.Kind == MutationKind::RemoveEdge ||
      M.Kind == MutationKind::RetargetBranch) {
    CFG Scratch = CFG::fromFunction(F);
    Scratch.removeEdge(M.From, M.To);
    if (M.Kind == MutationKind::RetargetBranch)
      Scratch.addEdge(M.From, M.To2);
    if (!allReachable(Scratch))
      return false;
  }

  // A new predecessor edge into a block with φs must extend every φ's
  // operand list (they index predecessors positionally, and
  // removeSuccessor relies on the parity). The duplicated first operand
  // is as good a value as any: the analyses only read use *blocks*.
  auto addEdgeWithPhiParity = [&F](unsigned From, unsigned To) {
    F.block(From)->addSuccessor(F.block(To));
    for (Instruction *Phi : F.block(To)->phis()) {
      // Duplicate an existing incoming value; a φ drained to zero
      // operands (its block is mid-rewiring) falls back to itself.
      Phi->addOperand(Phi->operands().empty() ? Phi->result()
                                              : Phi->operands().front());
      Phi->addIncomingBlock(F.block(From));
    }
  };
  switch (M.Kind) {
  case MutationKind::AddEdge:
    addEdgeWithPhiParity(M.From, M.To);
    break;
  case MutationKind::RemoveEdge:
    F.block(M.From)->removeSuccessor(F.block(M.To));
    break;
  case MutationKind::RetargetBranch:
    F.block(M.From)->removeSuccessor(F.block(M.To));
    addEdgeWithPhiParity(M.From, M.To2);
    break;
  case MutationKind::SplitBlock: {
    BasicBlock *B = F.block(M.From);
    BasicBlock *NewB = F.createBlock();
    assert(NewB->id() == M.To && "validated id must match createBlock");
    std::vector<BasicBlock *> Moved = B->successors();
    for (BasicBlock *S : Moved)
      B->removeSuccessor(S);
    for (BasicBlock *S : Moved)
      addEdgeWithPhiParity(NewB->id(), S->id());
    B->addSuccessor(NewB);
    break;
  }
  }
  return true;
}

std::optional<Mutation>
ssalive::mutateFunctionCFG(Function &F, RandomEngine &Rng,
                           const CFGMutatorOptions &Opts) {
  // Decide on a scratch copy (absorbing all rejected candidates), then
  // replay the single accepted edit against the function so its delta
  // journal records exactly the clean batch.
  CFG Scratch = CFG::fromFunction(F);
  auto M = mutateCFG(Scratch, Rng, Opts);
  if (!M)
    return std::nullopt;
  bool Applied = applyFunctionMutation(F, *M);
  assert(Applied && "a mutation accepted on the scratch graph must apply");
  (void)Applied;
  return M;
}
