//===- ir/IRPrinter.cpp - Textual IR output -------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "ir/Function.h"
#include "support/Debug.h"

using namespace ssalive;

static void printOperandList(const Instruction &I, std::string &Out) {
  for (unsigned Idx = 0, E = I.numOperands(); Idx != E; ++Idx) {
    if (Idx != 0)
      Out += ", ";
    Out += "%" + I.operand(Idx)->name();
  }
}

std::string ssalive::printInstruction(const Instruction &I) {
  std::string Out;
  if (I.result())
    Out += "%" + I.result()->name() + " = ";
  Out += opcodeName(I.opcode());

  switch (I.opcode()) {
  case Opcode::Param:
  case Opcode::Const:
    Out += " " + std::to_string(I.immediate());
    break;
  case Opcode::Phi:
    for (unsigned Idx = 0, E = I.numOperands(); Idx != E; ++Idx) {
      Out += Idx == 0 ? " " : ", ";
      Out += "[%" + I.operand(Idx)->name() + ", " +
             I.incomingBlock(Idx)->name() + "]";
    }
    break;
  case Opcode::Jump:
    Out += " " + I.parent()->successors()[0]->name();
    break;
  case Opcode::Branch:
    Out += " %" + I.operand(0)->name() + ", " +
           I.parent()->successors()[0]->name() + ", " +
           I.parent()->successors()[1]->name();
    break;
  default:
    if (I.numOperands() != 0) {
      Out += " ";
      printOperandList(I, Out);
    }
    break;
  }
  return Out;
}

std::string ssalive::printFunction(const Function &F) {
  std::string Out = "func @" + F.name() + " {\n";
  for (const auto &B : F.blocks()) {
    Out += B->name() + ":";
    if (!B->predecessors().empty()) {
      Out += "  ; preds:";
      for (const BasicBlock *P : B->predecessors())
        Out += " " + P->name();
    }
    Out += "\n";
    for (const auto &I : B->instructions())
      Out += "  " + printInstruction(*I) + "\n";
  }
  Out += "}\n";
  return Out;
}
