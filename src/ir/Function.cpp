//===- ir/Function.cpp - IR functions -------------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace ssalive;

BasicBlock *Function::createBlock(std::string BlockName) {
  unsigned Id = numBlocks();
  if (BlockName.empty())
    BlockName = "bb" + std::to_string(Id);
  Blocks.push_back(std::make_unique<BasicBlock>(Id, std::move(BlockName)));
  Blocks.back()->setParent(this);
  recordCFGDelta(CFGDelta::nodeAdd(Id));
  return Blocks.back().get();
}

Value *Function::createValue(std::string ValueName) {
  unsigned Id = numValues();
  if (ValueName.empty())
    ValueName = "v" + std::to_string(Id);
  Values.push_back(std::make_unique<Value>(Id, std::move(ValueName)));
  return Values.back().get();
}

std::vector<Value *> Function::parameters() const {
  std::vector<Value *> Params;
  if (Blocks.empty())
    return Params;
  for (const auto &I : entry()->instructions())
    if (I->opcode() == Opcode::Param)
      Params.push_back(I->result());
  return Params;
}

unsigned Function::numEdges() const {
  unsigned N = 0;
  for (const auto &B : Blocks)
    N += B->numSuccessors();
  return N;
}
