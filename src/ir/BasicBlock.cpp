//===- ir/BasicBlock.cpp - CFG basic blocks -------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include "ir/Function.h"
#include "support/Debug.h"

#include <algorithm>

using namespace ssalive;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> I) {
  assert((Instrs.empty() || !Instrs.back()->isTerminator()) &&
         "appending past a terminator");
  I->setParent(this);
  Instrs.push_back(std::move(I));
  return Instrs.back().get();
}

Instruction *BasicBlock::insertAt(unsigned Index,
                                  std::unique_ptr<Instruction> I) {
  assert(Index <= Instrs.size() && "insert position out of range");
  I->setParent(this);
  auto It = Instrs.insert(Instrs.begin() + Index, std::move(I));
  return It->get();
}

Instruction *BasicBlock::insertBeforeTerminator(
    std::unique_ptr<Instruction> I) {
  unsigned Pos = static_cast<unsigned>(Instrs.size());
  if (Pos != 0 && Instrs.back()->isTerminator())
    --Pos;
  return insertAt(Pos, std::move(I));
}

void BasicBlock::erase(Instruction *I) {
  auto It = std::find_if(
      Instrs.begin(), Instrs.end(),
      [I](const std::unique_ptr<Instruction> &P) { return P.get() == I; });
  assert(It != Instrs.end() && "erasing instruction from wrong block");
  Instrs.erase(It);
}

Instruction *BasicBlock::terminator() const {
  if (Instrs.empty() || !Instrs.back()->isTerminator())
    return nullptr;
  return Instrs.back().get();
}

std::vector<Instruction *> BasicBlock::phis() const {
  std::vector<Instruction *> Result;
  for (const auto &I : Instrs) {
    if (!I->isPhi())
      break;
    Result.push_back(I.get());
  }
  return Result;
}

unsigned BasicBlock::predecessorIndex(const BasicBlock *Pred) const {
  for (unsigned I = 0, E = numPredecessors(); I != E; ++I)
    if (Preds[I] == Pred)
      return I;
  SSALIVE_UNREACHABLE("block is not a predecessor");
}

void BasicBlock::addSuccessor(BasicBlock *Succ) {
  assert(Succ && "null successor");
  assert(std::find(Succs.begin(), Succs.end(), Succ) == Succs.end() &&
         "duplicate CFG edge");
  Succs.push_back(Succ);
  Succ->Preds.push_back(this);
  if (Parent)
    Parent->recordCFGDelta(CFGDelta::edgeInsert(Id, Succ->id()));
}

void BasicBlock::removeSuccessor(BasicBlock *Succ) {
  assert(Succ && "null successor");
  auto It = std::find(Succs.begin(), Succs.end(), Succ);
  assert(It != Succs.end() && "removing nonexistent CFG edge");
  unsigned PredIdx = Succ->predecessorIndex(this);
  Succs.erase(It);
  Succ->Preds.erase(Succ->Preds.begin() + PredIdx);
  for (Instruction *Phi : Succ->phis())
    Phi->removeOperand(PredIdx);
  if (Parent)
    Parent->recordCFGDelta(CFGDelta::edgeRemove(Id, Succ->id()));
}
