//===- ir/Value.h - IR values (variables) -----------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Values are the variables of the IR. A value records the instructions that
/// define it (exactly one under SSA) and an automatically maintained list of
/// its uses — the def-use chain the paper's query algorithm walks ("A list
/// of uses for each variable, also known as def-use chain, is available",
/// Section 1).
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_VALUE_H
#define SSALIVE_IR_VALUE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ssalive {

class Instruction;
class BasicBlock;

/// A use site: the using instruction and the operand slot it occupies.
/// For φ-instructions the operand index also identifies the incoming
/// predecessor block, which is where Definition 1 of the paper places the
/// use for liveness purposes.
struct Use {
  Instruction *User = nullptr;
  unsigned OperandIndex = 0;

  bool operator==(const Use &RHS) const {
    return User == RHS.User && OperandIndex == RHS.OperandIndex;
  }
};

/// An IR variable. Outside SSA form a value may have several defining
/// instructions; the SSA verifier enforces exactly one.
class Value {
public:
  Value(unsigned Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  /// Dense per-function id; indexes liveness universes and bitsets.
  unsigned id() const { return Id; }

  const std::string &name() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// All defining instructions (in creation order). Exactly one under SSA.
  const std::vector<Instruction *> &defs() const { return Defs; }

  /// The unique SSA definition. Asserts if the value is not single-def.
  Instruction *ssaDef() const {
    assert(Defs.size() == 1 && "value is not in SSA form");
    return Defs.front();
  }

  /// True if this value has exactly one defining instruction.
  bool hasSingleDef() const { return Defs.size() == 1; }

  /// The block containing the unique SSA definition.
  BasicBlock *defBlock() const;

  /// The def-use chain. Maintained by Instruction operand bookkeeping.
  const std::vector<Use> &uses() const { return Uses; }

  bool hasUses() const { return !Uses.empty(); }
  unsigned numUses() const { return static_cast<unsigned>(Uses.size()); }

  /// Counts every edit to this value's def-use chain (def or use added or
  /// removed). Caches that hold a per-value view of the chain — the
  /// prepared-liveness cache numbers the Definition-1 use blocks once per
  /// value — key their entries on this so a chain edit drops exactly the
  /// edited value's entry, the per-value analogue of the function-level
  /// cfgVersion().
  std::uint64_t defUseEpoch() const { return DUEpoch; }

  /// \name Bookkeeping called by Instruction only.
  /// @{
  void addDef(Instruction *I) {
    Defs.push_back(I);
    ++DUEpoch;
  }
  void removeDef(Instruction *I);
  void addUse(Instruction *User, unsigned OperandIndex) {
    Uses.push_back(Use{User, OperandIndex});
    ++DUEpoch;
  }
  void removeUse(Instruction *User, unsigned OperandIndex);
  /// @}

private:
  unsigned Id;
  /// Kept adjacent to Id: the prepared-cache hot path reads exactly these
  /// two fields per query, so they share a cache line.
  std::uint64_t DUEpoch = 0;
  std::string Name;
  std::vector<Instruction *> Defs;
  std::vector<Use> Uses;
};

} // namespace ssalive

#endif // SSALIVE_IR_VALUE_H
