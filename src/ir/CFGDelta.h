//===- ir/CFGDelta.h - Structural-edit deltas and their journal -*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of the incremental-analysis contract: every structural CFG edit
/// (edge insert, edge remove, node addition) is describable as a CFGDelta,
/// and both `CFG` and `Function` keep a bounded DeltaJournal of the edits
/// behind their modification epoch. A consumer that cached analyses at
/// epoch E asks `deltasSince(E)`; when the journal still covers E it gets
/// the exact edit sequence and can repair its analyses in place
/// (DomTree::applyUpdates, LiveCheck::update, AnalysisManager::refresh)
/// instead of rebuilding them. When the journal has been trimmed, or an
/// edit was recorded only as a bare epoch bump, the call returns
/// std::nullopt and the consumer falls back to a full rebuild — the journal
/// is an optimization channel, never a correctness requirement.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_CFGDELTA_H
#define SSALIVE_IR_CFGDELTA_H

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ssalive {

/// One structural edit to a CFG.
struct CFGDelta {
  enum class Kind : unsigned char {
    EdgeInsert, ///< Edge From -> To added.
    EdgeRemove, ///< Edge From -> To removed.
    NodeAdd,    ///< Node with id From appended (no edges yet).
  };

  Kind K = Kind::EdgeInsert;
  unsigned From = 0;
  unsigned To = 0;

  static CFGDelta edgeInsert(unsigned From, unsigned To) {
    return {Kind::EdgeInsert, From, To};
  }
  static CFGDelta edgeRemove(unsigned From, unsigned To) {
    return {Kind::EdgeRemove, From, To};
  }
  static CFGDelta nodeAdd(unsigned Id) { return {Kind::NodeAdd, Id, Id}; }

  bool operator==(const CFGDelta &RHS) const {
    return K == RHS.K && From == RHS.From && To == RHS.To;
  }
};

/// A contiguous, read-only view of recorded deltas.
using CFGDeltaSpan = std::pair<const CFGDelta *, const CFGDelta *>;

/// Bounded journal of structural edits, kept in lock-step with an epoch
/// counter owned by the graph: invariant `BaseVersion + size() == epoch`,
/// i.e. journal entry i is exactly the edit that moved the graph from
/// version BaseVersion+i to BaseVersion+i+1. A bare epoch bump with no
/// describable delta poisons the journal (clears it and re-bases at the
/// current epoch), as does overflowing the capacity — consumers older than
/// the base simply rebuild.
class DeltaJournal {
public:
  /// Appends \p D as the edit that produced \p VersionAfter. Restarts the
  /// journal if the caller's version does not extend the recorded history
  /// (an unrecorded bump slipped in) or the capacity is exhausted.
  void record(const CFGDelta &D, std::uint64_t VersionAfter) {
    if (BaseVersion + Deltas.size() + 1 != VersionAfter ||
        Deltas.size() >= Capacity)
      poison(VersionAfter - 1);
    Deltas.push_back(D);
  }

  /// Forgets all history; the journal now covers only [\p CurrentVersion,
  /// \p CurrentVersion].
  void poison(std::uint64_t CurrentVersion) {
    Deltas.clear();
    BaseVersion = CurrentVersion;
  }

  /// The edits that advance a snapshot taken at \p Version to the current
  /// state, or std::nullopt when the journal no longer covers \p Version.
  /// \p CurrentVersion must be the owner's present epoch (consistency
  /// check against lost bumps).
  std::optional<CFGDeltaSpan> deltasSince(std::uint64_t Version,
                                          std::uint64_t CurrentVersion) const {
    if (BaseVersion + Deltas.size() != CurrentVersion)
      return std::nullopt; // Unrecorded edits happened after the last record.
    if (Version < BaseVersion || Version > CurrentVersion)
      return std::nullopt;
    const CFGDelta *Begin = Deltas.data() + (Version - BaseVersion);
    return CFGDeltaSpan{Begin, Deltas.data() + Deltas.size()};
  }

  std::uint64_t baseVersion() const { return BaseVersion; }
  std::size_t size() const { return Deltas.size(); }

private:
  /// Generous bound: a consumer that falls 4096 structural edits behind is
  /// cheaper to rebuild than to replay.
  static constexpr std::size_t Capacity = 4096;

  std::vector<CFGDelta> Deltas;
  std::uint64_t BaseVersion = 0;
};

} // namespace ssalive

#endif // SSALIVE_IR_CFGDELTA_H
