//===- ir/Verifier.cpp - IR structural and SSA invariants -----------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/CFG.h"
#include "ir/Function.h"
#include "support/BitVector.h"

#include <algorithm>

using namespace ssalive;

std::string VerifyResult::message() const {
  std::string Out;
  for (const std::string &E : Errors) {
    if (!Out.empty())
      Out += "\n";
    Out += E;
  }
  return Out;
}

static void addError(VerifyResult &R, std::string Msg) {
  R.Errors.push_back(std::move(Msg));
}

/// Marks all nodes reachable from the entry of \p G.
static BitVector reachableNodes(const CFG &G) {
  BitVector Seen(G.numNodes());
  if (G.numNodes() == 0)
    return Seen;
  std::vector<unsigned> Stack{G.entry()};
  Seen.set(G.entry());
  while (!Stack.empty()) {
    unsigned V = Stack.back();
    Stack.pop_back();
    for (unsigned S : G.successors(V))
      if (!Seen.test(S)) {
        Seen.set(S);
        Stack.push_back(S);
      }
  }
  return Seen;
}

VerifyResult ssalive::verifyStructure(const Function &F) {
  VerifyResult R;
  if (F.numBlocks() == 0) {
    addError(R, "function has no blocks");
    return R;
  }
  if (!F.entry()->predecessors().empty())
    addError(R, "entry block has predecessors");

  for (const auto &B : F.blocks()) {
    // Mirrored edges.
    for (const BasicBlock *S : B->successors()) {
      const auto &P = S->predecessors();
      if (std::find(P.begin(), P.end(), B.get()) == P.end())
        addError(R, "edge " + B->name() + "->" + S->name() +
                        " missing from predecessor list");
    }

    // Terminator discipline.
    const Instruction *Term = B->terminator();
    if (!Term) {
      addError(R, "block " + B->name() + " lacks a terminator");
      continue;
    }
    unsigned WantSuccs = 0;
    switch (Term->opcode()) {
    case Opcode::Jump:
      WantSuccs = 1;
      break;
    case Opcode::Branch:
      WantSuccs = 2;
      break;
    case Opcode::Ret:
      WantSuccs = 0;
      break;
    default:
      addError(R, "block " + B->name() + " has invalid terminator");
      break;
    }
    if (B->numSuccessors() != WantSuccs)
      addError(R, "block " + B->name() + " successor count " +
                      std::to_string(B->numSuccessors()) +
                      " does not match terminator");

    // Phi discipline: prefix position, arity, incoming order == pred order.
    bool PastPhis = false;
    for (const auto &I : B->instructions()) {
      if (!I->isPhi()) {
        PastPhis = true;
        continue;
      }
      if (PastPhis)
        addError(R, "phi after non-phi in block " + B->name());
      if (I->numOperands() != B->numPredecessors()) {
        addError(R, "phi in " + B->name() + " has " +
                        std::to_string(I->numOperands()) + " operands for " +
                        std::to_string(B->numPredecessors()) +
                        " predecessors");
        continue;
      }
      for (unsigned Idx = 0, E = I->numOperands(); Idx != E; ++Idx)
        if (I->incomingBlock(Idx) != B->predecessors()[Idx])
          addError(R, "phi in " + B->name() + " incoming block " +
                          std::to_string(Idx) +
                          " does not match predecessor order");
      if (!I->result())
        addError(R, "phi without result in block " + B->name());
    }

    // Non-terminator instructions must not be terminators mid-block; the
    // append() assertion enforces this at construction, re-checked here for
    // parsed/transformed IR.
    for (const auto &I : B->instructions())
      if (I->isTerminator() && I.get() != Term)
        addError(R, "terminator in the middle of block " + B->name());
  }

  // Reachability: the analyses assume every node is reachable from r.
  CFG G = CFG::fromFunction(F);
  BitVector Reach = reachableNodes(G);
  for (const auto &B : F.blocks())
    if (!Reach.test(B->id()))
      addError(R, "block " + B->name() + " unreachable from entry");
  return R;
}

std::vector<std::vector<unsigned>>
ssalive::computeDominatorsNaive(const CFG &G) {
  unsigned N = G.numNodes();
  std::vector<BitVector> Dom(N);
  for (unsigned V = 0; V != N; ++V) {
    Dom[V].resize(N);
    if (V == G.entry()) {
      Dom[V].set(V);
    } else {
      // Start from "dominated by everything" and intersect downwards.
      for (unsigned I = 0; I != N; ++I)
        Dom[V].set(I);
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned V = 0; V != N; ++V) {
      if (V == G.entry())
        continue;
      BitVector New(N);
      bool First = true;
      for (unsigned P : G.predecessors(V)) {
        if (First) {
          New = Dom[P];
          First = false;
        } else {
          New &= Dom[P];
        }
      }
      New.set(V);
      if (New != Dom[V]) {
        Dom[V] = New;
        Changed = true;
      }
    }
  }
  std::vector<std::vector<unsigned>> Result(N);
  for (unsigned V = 0; V != N; ++V)
    for (unsigned D = Dom[V].findFirstSet(); D != BitVector::npos;
         D = Dom[V].findNextSet(D + 1))
      Result[V].push_back(D);
  return Result;
}

VerifyResult ssalive::verifySSA(const Function &F) {
  VerifyResult R = verifyStructure(F);
  if (!R.ok())
    return R;

  CFG G = CFG::fromFunction(F);
  auto Doms = computeDominatorsNaive(G);
  auto Dominates = [&Doms](unsigned A, unsigned B) {
    const auto &D = Doms[B];
    return std::binary_search(D.begin(), D.end(), A);
  };

  // Position of each instruction within its block, for intra-block order.
  auto instrIndex = [](const Instruction *I) {
    const auto &List = I->parent()->instructions();
    for (unsigned Idx = 0; Idx != List.size(); ++Idx)
      if (List[Idx].get() == I)
        return Idx;
    return static_cast<unsigned>(List.size());
  };

  for (const auto &VP : F.values()) {
    const Value *V = VP.get();
    if (V->defs().empty()) {
      if (V->hasUses())
        addError(R, "value %" + V->name() + " used but never defined");
      continue;
    }
    if (V->defs().size() > 1) {
      addError(R, "value %" + V->name() + " has multiple definitions");
      continue;
    }
    const Instruction *Def = V->defs().front();
    unsigned DefBlock = Def->parent()->id();

    for (const Use &U : V->uses()) {
      const Instruction *User = U.User;
      // Definition 1: a φ's i-th operand is used at the i-th predecessor.
      if (User->isPhi()) {
        unsigned UseBlock = User->incomingBlock(U.OperandIndex)->id();
        if (!Dominates(DefBlock, UseBlock))
          addError(R, "phi use of %" + V->name() + " from block " +
                          User->incomingBlock(U.OperandIndex)->name() +
                          " not dominated by definition");
        continue;
      }
      unsigned UseBlock = User->parent()->id();
      if (UseBlock == DefBlock) {
        if (instrIndex(Def) >= instrIndex(User))
          addError(R, "use of %" + V->name() + " before its definition in " +
                          User->parent()->name());
        continue;
      }
      if (!Dominates(DefBlock, UseBlock))
        addError(R, "use of %" + V->name() + " in block " +
                        User->parent()->name() +
                        " not dominated by definition");
    }
  }
  return R;
}
