//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small builder that creates instructions, wires up block edges, and
/// keeps φ operand order consistent with predecessor order. Every test,
/// example, and generator constructs IR through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_IRBUILDER_H
#define SSALIVE_IR_IRBUILDER_H

#include "ir/Function.h"

namespace ssalive {

/// Builder with an insertion block; all create* functions append there.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F) {}

  Function &function() const { return F; }

  /// Sets the block subsequent instructions are appended to.
  void setInsertBlock(BasicBlock *B) { Insert = B; }
  BasicBlock *insertBlock() const { return Insert; }

  /// \name Non-terminator instructions. Each returns the defined value.
  /// @{
  Value *createParam(unsigned ParamIndex, std::string Name = "");
  Value *createConst(std::int64_t C, std::string Name = "");
  Value *createCopy(Value *Src, std::string Name = "");
  Value *createBinary(Opcode Op, Value *LHS, Value *RHS,
                      std::string Name = "");
  Value *createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                      std::string Name = "");
  Value *createOpaque(const std::vector<Value *> &Ops, std::string Name = "");

  /// Creates a φ with one operand per current predecessor of the insertion
  /// block, all initialized to \p InitialOps (must match predecessor count).
  Value *createPhi(const std::vector<Value *> &InitialOps,
                   std::string Name = "");
  /// @}

  /// \name Terminators. These also add the CFG edges.
  /// @{
  void createJump(BasicBlock *Target);
  void createBranch(Value *Cond, BasicBlock *TrueTarget,
                    BasicBlock *FalseTarget);
  void createRet(Value *V);
  void createRetVoid();
  /// @}

private:
  Value *emit(Opcode Op, std::vector<Value *> Ops, std::string Name,
              std::int64_t Imm = 0);

  Function &F;
  BasicBlock *Insert = nullptr;
};

} // namespace ssalive

#endif // SSALIVE_IR_IRBUILDER_H
