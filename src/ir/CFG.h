//===- ir/CFG.h - Adjacency-list control-flow graph -------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain adjacency-list view of a control-flow graph G = (V, E, r) with
/// dense node ids and node 0 as the root r. All structural analyses (DFS,
/// dominance, reducibility, the liveness precomputation) run on this view,
/// so they work identically for full IR functions and for the bare graphs
/// the workload generator produces.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_CFG_H
#define SSALIVE_IR_CFG_H

#include "ir/CFGDelta.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ssalive {

class Function;

/// Immutable-by-convention adjacency-list digraph with a distinguished
/// entry node 0.
class CFG {
public:
  CFG() = default;

  /// Creates a graph with \p NumNodes nodes and no edges.
  explicit CFG(unsigned NumNodes) { resize(NumNodes); }

  /// Extracts the block graph of \p F; node ids equal block ids.
  static CFG fromFunction(const Function &F);

  /// Grows (or reshapes) the node set. Growth is journaled as one NodeAdd
  /// delta per new node; shrinking (or a same-size call) is not describable
  /// as deltas and poisons the journal.
  void resize(unsigned NumNodes) {
    unsigned Old = numNodes();
    Succs.resize(NumNodes);
    Preds.resize(NumNodes);
    if (NumNodes > Old) {
      for (unsigned Id = Old; Id != NumNodes; ++Id)
        recordDelta(CFGDelta::nodeAdd(Id));
    } else {
      bumpVersion();
    }
  }

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }

  unsigned numEdges() const {
    unsigned N = 0;
    for (const auto &S : Succs)
      N += static_cast<unsigned>(S.size());
    return N;
  }

  /// The root r; by convention node 0.
  unsigned entry() const {
    assert(numNodes() != 0 && "empty graph has no entry");
    return 0;
  }

  /// Adds the directed edge \p From -> \p To. Self-loops are allowed (they
  /// are back edges whose target is a trivial loop header).
  void addEdge(unsigned From, unsigned To) {
    assert(From < numNodes() && To < numNodes() && "edge endpoint range");
    Succs[From].push_back(To);
    Preds[To].push_back(From);
    recordDelta(CFGDelta::edgeInsert(From, To));
  }

  /// Removes the directed edge \p From -> \p To (which must exist).
  void removeEdge(unsigned From, unsigned To);

  /// \name Structural modification epoch and delta journal.
  ///
  /// The version counts structural edits (node or edge changes). Analyses
  /// cached against a CFG record the version they were built at and treat a
  /// mismatch as invalidation (the paper's Section 7 stability property:
  /// only CFG edits invalidate the liveness precomputation — variable and
  /// instruction edits never do, so nothing else bumps this).
  ///
  /// ## Delta-journal contract
  ///
  /// *Who records:* every structural mutator of this class — addEdge,
  /// removeEdge, and growing resize — appends one CFGDelta per version
  /// bump, in application order. A bare bumpVersion() (the escape hatch
  /// for edits made behind the graph's back) advances the epoch but
  /// poisons the journal.
  ///
  /// *Who drains:* a consumer that snapshotted analyses at epoch E calls
  /// deltasSince(E). A non-null span is the exact ordered edit sequence
  /// from E to version(); replaying it against the snapshot reproduces the
  /// current graph, which is what the incremental repair paths
  /// (DFS::recompute + DomTree::applyUpdates + LiveCheck::update) consume.
  /// Draining is non-destructive — any number of consumers at different
  /// epochs may read the journal; it trims itself only by capacity.
  ///
  /// *Epoch semantics:* version() == journal base + journal length always
  /// holds while only recording mutators run. deltasSince returns
  /// std::nullopt whenever the journal cannot prove it covers E (E predates
  /// the base, the journal was poisoned, or an unrecorded bump happened);
  /// the caller must then fall back to a full rebuild. Nullopt is always a
  /// safe answer — the journal accelerates invalidation, it never replaces
  /// it.
  /// @{
  std::uint64_t version() const { return Version; }
  void bumpVersion() {
    ++Version;
    Journal.poison(Version);
  }
  std::optional<CFGDeltaSpan> deltasSince(std::uint64_t V) const {
    return Journal.deltasSince(V, Version);
  }
  /// @}

  /// Returns true if the edge \p From -> \p To exists.
  bool hasEdge(unsigned From, unsigned To) const;

  const std::vector<unsigned> &successors(unsigned V) const {
    assert(V < numNodes() && "node out of range");
    return Succs[V];
  }

  const std::vector<unsigned> &predecessors(unsigned V) const {
    assert(V < numNodes() && "node out of range");
    return Preds[V];
  }

private:
  void recordDelta(const CFGDelta &D) {
    ++Version;
    Journal.record(D, Version);
  }

  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  std::uint64_t Version = 0;
  DeltaJournal Journal;
};

} // namespace ssalive

#endif // SSALIVE_IR_CFG_H
