//===- ir/CFG.cpp - Adjacency-list control-flow graph ---------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include "ir/Function.h"

#include <algorithm>

using namespace ssalive;

CFG CFG::fromFunction(const Function &F) {
  CFG G(F.numBlocks());
  for (const auto &B : F.blocks())
    for (const BasicBlock *S : B->successors())
      G.addEdge(B->id(), S->id());
  return G;
}

bool CFG::hasEdge(unsigned From, unsigned To) const {
  assert(From < numNodes() && "node out of range");
  const auto &S = Succs[From];
  return std::find(S.begin(), S.end(), To) != S.end();
}
