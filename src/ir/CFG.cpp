//===- ir/CFG.cpp - Adjacency-list control-flow graph ---------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/CFG.h"

#include "ir/Function.h"

#include <algorithm>

using namespace ssalive;

CFG CFG::fromFunction(const Function &F) {
  CFG G(F.numBlocks());
  for (const auto &B : F.blocks())
    for (const BasicBlock *S : B->successors())
      G.addEdge(B->id(), S->id());
  return G;
}

bool CFG::hasEdge(unsigned From, unsigned To) const {
  assert(From < numNodes() && "node out of range");
  const auto &S = Succs[From];
  return std::find(S.begin(), S.end(), To) != S.end();
}

void CFG::removeEdge(unsigned From, unsigned To) {
  assert(From < numNodes() && To < numNodes() && "edge endpoint range");
  auto &S = Succs[From];
  auto SIt = std::find(S.begin(), S.end(), To);
  assert(SIt != S.end() && "removing nonexistent edge");
  S.erase(SIt);
  auto &P = Preds[To];
  auto PIt = std::find(P.begin(), P.end(), From);
  assert(PIt != P.end() && "succ/pred lists out of sync");
  P.erase(PIt);
  recordDelta(CFGDelta::edgeRemove(From, To));
}
