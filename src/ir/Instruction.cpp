//===- ir/Instruction.cpp - IR instructions -------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include "support/Debug.h"

using namespace ssalive;

const char *ssalive::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Param:
    return "param";
  case Opcode::Const:
    return "const";
  case Opcode::Copy:
    return "copy";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::Select:
    return "select";
  case Opcode::Opaque:
    return "opaque";
  case Opcode::Phi:
    return "phi";
  case Opcode::Jump:
    return "jump";
  case Opcode::Branch:
    return "branch";
  case Opcode::Ret:
    return "ret";
  }
  SSALIVE_UNREACHABLE("invalid opcode");
}

bool ssalive::isTerminatorOpcode(Opcode Op) {
  return Op == Opcode::Jump || Op == Opcode::Branch || Op == Opcode::Ret;
}

Instruction::Instruction(Opcode Op, Value *Result, std::vector<Value *> Ops,
                         std::int64_t Immediate)
    : Op(Op), Result(Result), Operands(std::move(Ops)),
      Immediate(Immediate) {
  assert((!isTerminator() || !Result) && "terminators define no value");
  if (Result)
    Result->addDef(this);
  for (unsigned I = 0, E = numOperands(); I != E; ++I) {
    assert(Operands[I] && "null operand");
    Operands[I]->addUse(this, I);
  }
}

Instruction::~Instruction() { dropAllReferences(); }

void Instruction::setResult(Value *NewResult) {
  if (Result)
    Result->removeDef(this);
  Result = NewResult;
  if (Result)
    Result->addDef(this);
}

void Instruction::setOperand(unsigned I, Value *V) {
  assert(I < Operands.size() && "operand index out of range");
  assert(V && "null operand");
  Operands[I]->removeUse(this, I);
  Operands[I] = V;
  V->addUse(this, I);
}

void Instruction::addOperand(Value *V) {
  assert(V && "null operand");
  Operands.push_back(V);
  V->addUse(this, static_cast<unsigned>(Operands.size() - 1));
}

void Instruction::removeOperand(unsigned I) {
  assert(I < Operands.size() && "operand index out of range");
  // Use records carry operand indices, so every operand past I must be
  // re-registered under its shifted index.
  for (unsigned J = I, E = numOperands(); J != E; ++J)
    Operands[J]->removeUse(this, J);
  Operands.erase(Operands.begin() + I);
  if (!Incoming.empty())
    Incoming.erase(Incoming.begin() + I);
  for (unsigned J = I, E = numOperands(); J != E; ++J)
    Operands[J]->addUse(this, J);
}

void Instruction::dropAllReferences() {
  for (unsigned I = 0, E = numOperands(); I != E; ++I)
    Operands[I]->removeUse(this, I);
  Operands.clear();
  Incoming.clear();
  if (Result) {
    Result->removeDef(this);
    Result = nullptr;
  }
}
