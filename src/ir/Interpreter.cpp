//===- ir/Interpreter.cpp - Reference IR executor -------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"

#include "ir/Function.h"
#include "support/Debug.h"

using namespace ssalive;

namespace {

/// Execution environment: one slot per value id plus a defined-bit, so
/// reads of never-written values are detected rather than misread as 0.
class Environment {
public:
  explicit Environment(unsigned NumValues)
      : Slots(NumValues, 0), Defined(NumValues, false) {}

  void write(const Value *V, std::int64_t X) {
    Slots[V->id()] = X;
    Defined[V->id()] = true;
  }

  bool isDefined(const Value *V) const { return Defined[V->id()]; }

  std::int64_t read(const Value *V) const {
    assert(Defined[V->id()] && "read of undefined value");
    return Slots[V->id()];
  }

private:
  std::vector<std::int64_t> Slots;
  std::vector<bool> Defined;
};

} // namespace

/// Wrapping arithmetic through uint64_t avoids signed-overflow UB while
/// keeping two's-complement semantics deterministic.
static std::int64_t wrapAdd(std::int64_t A, std::int64_t B) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) +
                                   static_cast<std::uint64_t>(B));
}
static std::int64_t wrapSub(std::int64_t A, std::int64_t B) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) -
                                   static_cast<std::uint64_t>(B));
}
static std::int64_t wrapMul(std::int64_t A, std::int64_t B) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(A) *
                                   static_cast<std::uint64_t>(B));
}

static std::uint64_t hashCombine(std::uint64_t H, std::uint64_t X) {
  H ^= X + 0x9E3779B97F4A7C15ull + (H << 6) + (H >> 2);
  return H;
}

ExecutionResult ssalive::interpret(const Function &F,
                                   const std::vector<std::int64_t> &Args,
                                   unsigned FuelBlocks) {
  ExecutionResult R;
  Environment Env(F.numValues());

  const BasicBlock *Block = F.entry();
  const BasicBlock *PrevBlock = nullptr;
  unsigned Fuel = FuelBlocks;

  while (true) {
    if (Fuel == 0) {
      R.Stop = ExecutionResult::Status::OutOfFuel;
      return R;
    }
    --Fuel;
    R.BlockTrace.push_back(Block->id());

    // Phase 1: φs with parallel-copy semantics. All selected operands are
    // read against the pre-entry environment before any φ result is
    // written, which is what makes swap-shaped φ groups behave correctly.
    std::vector<std::pair<Value *, std::int64_t>> PhiWrites;
    for (const auto &I : Block->instructions()) {
      if (!I->isPhi())
        break;
      assert(PrevBlock && "phi in entry block");
      unsigned Idx = Block->predecessorIndex(PrevBlock);
      Value *In = I->operand(Idx);
      if (!Env.isDefined(In)) {
        R.Stop = ExecutionResult::Status::ReadUndef;
        return R;
      }
      PhiWrites.emplace_back(I->result(), Env.read(In));
    }
    for (auto &[V, X] : PhiWrites)
      Env.write(V, X);

    // Phase 2: straight-line execution.
    const BasicBlock *Next = nullptr;
    for (const auto &I : Block->instructions()) {
      if (I->isPhi())
        continue;

      // Gather operand values, detecting non-strict reads.
      std::vector<std::int64_t> Ops;
      Ops.reserve(I->numOperands());
      bool Undef = false;
      for (Value *Op : I->operands()) {
        if (!Env.isDefined(Op)) {
          Undef = true;
          break;
        }
        Ops.push_back(Env.read(Op));
      }
      if (Undef) {
        R.Stop = ExecutionResult::Status::ReadUndef;
        return R;
      }

      switch (I->opcode()) {
      case Opcode::Param: {
        auto Idx = static_cast<size_t>(I->immediate());
        Env.write(I->result(), Idx < Args.size() ? Args[Idx] : 0);
        break;
      }
      case Opcode::Const:
        Env.write(I->result(), I->immediate());
        break;
      case Opcode::Copy:
        Env.write(I->result(), Ops[0]);
        break;
      case Opcode::Add:
        Env.write(I->result(), wrapAdd(Ops[0], Ops[1]));
        break;
      case Opcode::Sub:
        Env.write(I->result(), wrapSub(Ops[0], Ops[1]));
        break;
      case Opcode::Mul:
        Env.write(I->result(), wrapMul(Ops[0], Ops[1]));
        break;
      case Opcode::CmpLt:
        Env.write(I->result(), Ops[0] < Ops[1] ? 1 : 0);
        break;
      case Opcode::CmpEq:
        Env.write(I->result(), Ops[0] == Ops[1] ? 1 : 0);
        break;
      case Opcode::Select:
        Env.write(I->result(), Ops[0] != 0 ? Ops[1] : Ops[2]);
        break;
      case Opcode::Opaque: {
        // Deterministic uninterpreted function of the operands; every
        // execution of an opaque op also feeds the observation hash.
        std::uint64_t H = 0xA0761D6478BD642Full;
        for (std::int64_t X : Ops)
          H = hashCombine(H, static_cast<std::uint64_t>(X));
        Env.write(I->result(), static_cast<std::int64_t>(H));
        R.ObservationHash = hashCombine(R.ObservationHash, H);
        break;
      }
      case Opcode::Jump:
        Next = Block->successors()[0];
        break;
      case Opcode::Branch:
        Next = Ops[0] != 0 ? Block->successors()[0] : Block->successors()[1];
        break;
      case Opcode::Ret:
        R.Stop = ExecutionResult::Status::Returned;
        if (!Ops.empty()) {
          R.HasReturnValue = true;
          R.ReturnValue = Ops[0];
          R.ObservationHash = hashCombine(
              R.ObservationHash, static_cast<std::uint64_t>(Ops[0]));
        }
        return R;
      case Opcode::Phi:
        SSALIVE_UNREACHABLE("phi past the phi prefix");
      }
    }

    assert(Next && "block fell through without terminator");
    PrevBlock = Block;
    Block = Next;
  }
}

bool ssalive::sameObservableBehavior(const ExecutionResult &A,
                                     const ExecutionResult &B) {
  if (A.Stop != B.Stop)
    return false;
  if (A.BlockTrace != B.BlockTrace)
    return false;
  if (A.ObservationHash != B.ObservationHash)
    return false;
  if (A.Stop == ExecutionResult::Status::Returned) {
    if (A.HasReturnValue != B.HasReturnValue)
      return false;
    if (A.HasReturnValue && A.ReturnValue != B.ReturnValue)
      return false;
  }
  return true;
}
