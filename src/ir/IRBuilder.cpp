//===- ir/IRBuilder.cpp - Convenience IR construction ---------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "support/Debug.h"

using namespace ssalive;

Value *IRBuilder::emit(Opcode Op, std::vector<Value *> Ops, std::string Name,
                       std::int64_t Imm) {
  assert(Insert && "no insertion block set");
  Value *Result = F.createValue(std::move(Name));
  Insert->append(
      std::make_unique<Instruction>(Op, Result, std::move(Ops), Imm));
  return Result;
}

Value *IRBuilder::createParam(unsigned ParamIndex, std::string Name) {
  return emit(Opcode::Param, {}, std::move(Name),
              static_cast<std::int64_t>(ParamIndex));
}

Value *IRBuilder::createConst(std::int64_t C, std::string Name) {
  return emit(Opcode::Const, {}, std::move(Name), C);
}

Value *IRBuilder::createCopy(Value *Src, std::string Name) {
  return emit(Opcode::Copy, {Src}, std::move(Name));
}

Value *IRBuilder::createBinary(Opcode Op, Value *LHS, Value *RHS,
                               std::string Name) {
  assert((Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::Mul ||
          Op == Opcode::CmpLt || Op == Opcode::CmpEq) &&
         "not a binary opcode");
  return emit(Op, {LHS, RHS}, std::move(Name));
}

Value *IRBuilder::createSelect(Value *Cond, Value *TrueV, Value *FalseV,
                               std::string Name) {
  return emit(Opcode::Select, {Cond, TrueV, FalseV}, std::move(Name));
}

Value *IRBuilder::createOpaque(const std::vector<Value *> &Ops,
                               std::string Name) {
  return emit(Opcode::Opaque, Ops, std::move(Name));
}

Value *IRBuilder::createPhi(const std::vector<Value *> &InitialOps,
                            std::string Name) {
  assert(Insert && "no insertion block set");
  assert(InitialOps.size() == Insert->numPredecessors() &&
         "phi operand count must match predecessor count");
  Value *Result = F.createValue(std::move(Name));
  auto Phi = std::make_unique<Instruction>(Opcode::Phi, Result, InitialOps);
  for (BasicBlock *Pred : Insert->predecessors())
    Phi->addIncomingBlock(Pred);
  // Phis must precede all non-phi instructions.
  unsigned Pos = 0;
  for (const auto &I : Insert->instructions()) {
    if (!I->isPhi())
      break;
    ++Pos;
  }
  Insert->insertAt(Pos, std::move(Phi));
  return Result;
}

void IRBuilder::createJump(BasicBlock *Target) {
  assert(Insert && "no insertion block set");
  Insert->append(std::make_unique<Instruction>(Opcode::Jump, nullptr,
                                               std::vector<Value *>{}));
  Insert->addSuccessor(Target);
}

void IRBuilder::createBranch(Value *Cond, BasicBlock *TrueTarget,
                             BasicBlock *FalseTarget) {
  assert(Insert && "no insertion block set");
  Insert->append(std::make_unique<Instruction>(
      Opcode::Branch, nullptr, std::vector<Value *>{Cond}));
  Insert->addSuccessor(TrueTarget);
  Insert->addSuccessor(FalseTarget);
}

void IRBuilder::createRet(Value *V) {
  assert(Insert && "no insertion block set");
  Insert->append(std::make_unique<Instruction>(Opcode::Ret, nullptr,
                                               std::vector<Value *>{V}));
}

void IRBuilder::createRetVoid() {
  assert(Insert && "no insertion block set");
  Insert->append(std::make_unique<Instruction>(Opcode::Ret, nullptr,
                                               std::vector<Value *>{}));
}
