//===- ir/Verifier.h - IR structural and SSA invariants ---------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural checks (edge/terminator/φ consistency) plus the strict-SSA
/// invariants the paper assumes: each variable has a single definition and
/// every use is dominated by it ("the program is in SSA form and the
/// dominance property must hold", Section 1). The dominance check here uses
/// a deliberately naive independent dominance computation, so it doubles as
/// a cross-check of the production dominator tree in tests.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_VERIFIER_H
#define SSALIVE_IR_VERIFIER_H

#include <string>
#include <vector>

namespace ssalive {

class Function;
class CFG;

/// Verification report: empty Errors means the function checks out.
struct VerifyResult {
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
  /// All errors joined with newlines (handy for gtest messages).
  std::string message() const;
};

/// Checks structural well-formedness: mirrored succ/pred lists, exactly one
/// terminator per block ending it, terminator arity matching successor
/// count, φs forming a block prefix with operands matching predecessors,
/// entry without predecessors, all blocks reachable.
VerifyResult verifyStructure(const Function &F);

/// Checks strict SSA form on top of the structural checks: single def per
/// used value, defs before uses within a block, and the dominance property
/// under the paper's Definition 1 placement of φ uses.
VerifyResult verifySSA(const Function &F);

/// Naive quadratic dominance computation by iterated set intersection;
/// Doms[V] holds the ids of all dominators of V. Exposed for cross-checking
/// the DomTree implementations.
std::vector<std::vector<unsigned>> computeDominatorsNaive(const CFG &G);

} // namespace ssalive

#endif // SSALIVE_IR_VERIFIER_H
