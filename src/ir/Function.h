//===- ir/Function.h - IR functions -----------------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function owns its basic blocks and values and hands out dense ids for
/// both, which every analysis uses as array/bitset indices.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_FUNCTION_H
#define SSALIVE_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "ir/CFGDelta.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ssalive {

/// A single procedure: entry block, block list, value table.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// \name Blocks.
  /// @{
  /// Creates a new block; the first one created becomes the entry.
  BasicBlock *createBlock(std::string BlockName = "");

  BasicBlock *entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  BasicBlock *block(unsigned Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id].get();
  }

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  /// @}

  /// \name Values.
  /// @{
  /// Creates a fresh value. An empty name is replaced by "v<id>".
  Value *createValue(std::string ValueName = "");

  unsigned numValues() const { return static_cast<unsigned>(Values.size()); }

  Value *value(unsigned Id) const {
    assert(Id < Values.size() && "value id out of range");
    return Values[Id].get();
  }

  const std::vector<std::unique_ptr<Value>> &values() const { return Values; }

  /// Parameter values, in declaration order (results of Param pseudo-ops).
  std::vector<Value *> parameters() const;
  /// @}

  /// Total number of CFG edges; the quantitative evaluation reports edge
  /// densities (paper Section 6.1).
  unsigned numEdges() const;

  /// \name CFG modification epoch and delta journal.
  /// Counts structural edits to the block graph: block creation and edge
  /// insertion/removal (BasicBlock::addSuccessor/removeSuccessor bump it).
  /// Instruction and value edits leave it unchanged — the paper's Section 7
  /// stability property, which lets the AnalysisManager cache the liveness
  /// precomputation across arbitrary non-structural rewrites.
  ///
  /// Alongside the counter, the structural mutators journal what each bump
  /// did (see the delta-journal contract in ir/CFG.h — Function keeps the
  /// same journal over block ids). AnalysisManager::refresh drains
  /// deltasSince(cached epoch) to repair the function's cached analyses in
  /// place instead of rebuilding them; a bare bumpCFGVersion() poisons the
  /// journal and forces the rebuild path.
  /// @{
  std::uint64_t cfgVersion() const { return CFGEpoch; }
  void bumpCFGVersion() {
    ++CFGEpoch;
    Journal.poison(CFGEpoch);
  }
  /// Journaled epoch bump; called by the structural mutators.
  void recordCFGDelta(const CFGDelta &D) {
    ++CFGEpoch;
    Journal.record(D, CFGEpoch);
  }
  std::optional<CFGDeltaSpan> deltasSince(std::uint64_t V) const {
    return Journal.deltasSince(V, CFGEpoch);
  }
  /// @}

private:
  std::string Name;
  /// Values are declared before Blocks deliberately: members are destroyed
  /// in reverse declaration order, and the instruction destructors inside
  /// the blocks unlink themselves from value def-use chains, so the values
  /// must still be alive when the blocks go away.
  std::vector<std::unique_ptr<Value>> Values;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  std::uint64_t CFGEpoch = 0;
  DeltaJournal Journal;
};

} // namespace ssalive

#endif // SSALIVE_IR_FUNCTION_H
