//===- ir/IRPrinter.h - Textual IR output -----------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints functions in the textual form IRParser reads back. Round-tripping
/// is tested; the format is the project's debugging lingua franca.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_IRPRINTER_H
#define SSALIVE_IR_IRPRINTER_H

#include <string>

namespace ssalive {

class Function;
class Instruction;

/// Renders \p F as text, e.g.:
/// \code
///   func @fib {
///   bb0:
///     %n = param 0
///     %c1 = const 1
///     %t = cmplt %n, %c1
///     branch %t, bb1, bb2
///   ...
///   }
/// \endcode
std::string printFunction(const Function &F);

/// Renders a single instruction (no trailing newline).
std::string printInstruction(const Instruction &I);

} // namespace ssalive

#endif // SSALIVE_IR_IRPRINTER_H
