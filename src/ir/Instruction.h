//===- ir/Instruction.h - IR instructions -----------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions of the small SSA IR. The opcode set is deliberately compact:
/// enough arithmetic to give the interpreter real semantics, φ-functions
/// with incoming-block operands, and explicit terminators. Operand changes
/// keep the def-use chains of the operand values up to date.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_INSTRUCTION_H
#define SSALIVE_IR_INSTRUCTION_H

#include "ir/Value.h"

#include <cstdint>
#include <vector>

namespace ssalive {

class BasicBlock;

/// Instruction opcodes.
enum class Opcode {
  Param, ///< Function parameter pseudo-definition (entry block only).
  Const, ///< Integer constant; no operands, immediate payload.
  Copy,  ///< Register-to-register move (SSA destruction emits these).
  Add,
  Sub,
  Mul,
  CmpLt,  ///< Signed less-than, yields 0/1.
  CmpEq,  ///< Equality, yields 0/1.
  Select, ///< Select(c, a, b) = c ? a : b.
  Opaque, ///< Uninterpreted n-ary operation (hash of operands when run).
  Phi,    ///< φ-function; operand i flows in from incoming block i.
  Jump,   ///< Unconditional terminator; target = block successor 0.
  Branch, ///< Conditional terminator; succ 0 if cond != 0 else succ 1.
  Ret,    ///< Return (optional operand).
};

/// Returns the mnemonic for \p Op (e.g. "add").
const char *opcodeName(Opcode Op);

/// Returns true for Jump/Branch/Ret.
bool isTerminatorOpcode(Opcode Op);

/// A single IR instruction. Owned by its parent basic block.
class Instruction {
public:
  Instruction(Opcode Op, Value *Result, std::vector<Value *> Ops,
              std::int64_t Immediate = 0);
  ~Instruction();

  Instruction(const Instruction &) = delete;
  Instruction &operator=(const Instruction &) = delete;

  Opcode opcode() const { return Op; }
  bool isPhi() const { return Op == Opcode::Phi; }
  bool isTerminator() const { return isTerminatorOpcode(Op); }

  /// The value this instruction defines, or nullptr (terminators).
  Value *result() const { return Result; }

  /// Rebinds the result to \p NewResult, updating def lists on both values.
  void setResult(Value *NewResult);

  unsigned numOperands() const {
    return static_cast<unsigned>(Operands.size());
  }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces operand \p I with \p V, updating use lists.
  void setOperand(unsigned I, Value *V);

  /// Appends an operand (used when extending φs for a new predecessor).
  void addOperand(Value *V);

  /// Removes operand \p I, reindexing the use records of the operands that
  /// follow it. For φ-instructions the parallel incoming block is removed
  /// too (used when a predecessor edge is unlinked).
  void removeOperand(unsigned I);

  /// For φ-instructions: the predecessor block operand \p I flows in from.
  BasicBlock *incomingBlock(unsigned I) const {
    assert(isPhi() && "incoming blocks only exist on phis");
    assert(I < Incoming.size() && "incoming index out of range");
    return Incoming[I];
  }
  void setIncomingBlock(unsigned I, BasicBlock *B) {
    assert(isPhi() && "incoming blocks only exist on phis");
    assert(I < Incoming.size() && "incoming index out of range");
    Incoming[I] = B;
  }
  void addIncomingBlock(BasicBlock *B) {
    assert(isPhi() && "incoming blocks only exist on phis");
    Incoming.push_back(B);
  }
  const std::vector<BasicBlock *> &incomingBlocks() const {
    assert(isPhi() && "incoming blocks only exist on phis");
    return Incoming;
  }

  /// Immediate payload (Const) or parameter index (Param).
  std::int64_t immediate() const { return Immediate; }

  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *B) { Parent = B; }

  /// Detaches all operands and the result from their def-use chains; called
  /// before an instruction is destroyed or replaced wholesale.
  void dropAllReferences();

private:
  Opcode Op;
  Value *Result;
  std::vector<Value *> Operands;
  std::vector<BasicBlock *> Incoming; // Parallel to Operands for phis.
  std::int64_t Immediate;
  BasicBlock *Parent = nullptr;
};

} // namespace ssalive

#endif // SSALIVE_IR_INSTRUCTION_H
