//===- ir/IRParser.h - Textual IR input -------------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form produced by IRPrinter. Tests and examples use it
/// to state programs compactly. Values may be assigned more than once in the
/// input (non-SSA programs destined for SSA construction); the SSA verifier
/// decides whether a parsed function is in SSA form.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_IRPARSER_H
#define SSALIVE_IR_IRPARSER_H

#include <memory>
#include <string>
#include <vector>

namespace ssalive {

class Function;

/// Result of a parse: either a function or a diagnostic.
struct ParseResult {
  std::unique_ptr<Function> Func; ///< Null on error.
  std::string Error;              ///< Empty on success; "line N: msg" else.
};

/// Parses one function. Grammar (line oriented, '#' or ';' comments):
/// \code
///   func @name {
///   label:
///     %v = param 0 | const 17 | copy %a | add %a, %b | ... |
///          phi [%a, label], [%b, label] | opaque %a, %b
///     jump label | branch %c, label, label | ret [%v]
///   }
/// \endcode
ParseResult parseFunction(const std::string &Text);

/// Result of parsing a multi-function module.
struct ModuleParseResult {
  std::vector<std::unique_ptr<Function>> Funcs; ///< Empty on error.
  std::string Error; ///< Empty on success; "function N, line L: msg" else.
};

/// Parses a sequence of functions in the parseFunction() grammar, separated
/// by whitespace/comments. The batch tools consume whole .ssair modules
/// through this entry point.
ModuleParseResult parseModule(const std::string &Text);

} // namespace ssalive

#endif // SSALIVE_IR_IRPARSER_H
