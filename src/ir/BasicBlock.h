//===- ir/BasicBlock.h - CFG basic blocks -----------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks: a list of instructions plus explicit successor/predecessor
/// edges. Successor order is semantically meaningful (Branch takes successor
/// 0 when the condition is true) and predecessor order is what φ operands
/// index.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_BASICBLOCK_H
#define SSALIVE_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace ssalive {

class Function;

/// A node of the control-flow graph holding a straight-line instruction
/// sequence ended by at most one terminator.
class BasicBlock {
public:
  BasicBlock(unsigned Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  /// Dense per-function id; node index for all CFG analyses.
  unsigned id() const { return Id; }

  const std::string &name() const { return Name; }

  Function *parent() const { return Parent; }
  void setParent(Function *F) { Parent = F; }

  /// \name Instruction list.
  /// @{
  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Instrs;
  }
  bool empty() const { return Instrs.empty(); }

  /// Appends \p I; a terminator may only be the last instruction.
  Instruction *append(std::unique_ptr<Instruction> I);

  /// Inserts \p I at position \p Index.
  Instruction *insertAt(unsigned Index, std::unique_ptr<Instruction> I);

  /// Inserts \p I directly before the terminator (or at the end when the
  /// block has no terminator yet). This is where SSA destruction places the
  /// copies it adds to predecessor blocks.
  Instruction *insertBeforeTerminator(std::unique_ptr<Instruction> I);

  /// Removes and destroys \p I (dropping its operand references).
  void erase(Instruction *I);

  /// The terminator, or nullptr if none has been appended yet.
  Instruction *terminator() const;

  /// All φ-instructions (they must form a prefix of the block).
  std::vector<Instruction *> phis() const;
  /// @}

  /// \name CFG edges.
  /// @{
  const std::vector<BasicBlock *> &successors() const { return Succs; }
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  unsigned numSuccessors() const { return static_cast<unsigned>(Succs.size()); }
  unsigned numPredecessors() const {
    return static_cast<unsigned>(Preds.size());
  }

  /// The position of \p Pred in the predecessor list; this is the φ operand
  /// index for values flowing in from \p Pred. Asserts if absent.
  unsigned predecessorIndex(const BasicBlock *Pred) const;

  /// Links this block to \p Succ (appends to both edge lists). Duplicate
  /// edges are permitted by CFG theory but rejected here for simplicity.
  /// Bumps the parent function's CFG epoch.
  void addSuccessor(BasicBlock *Succ);

  /// Unlinks the edge to \p Succ (which must exist): removes it from both
  /// edge lists and drops the corresponding operand from every φ in \p Succ
  /// so φ operands stay parallel to the predecessor list. Bumps the parent
  /// function's CFG epoch. The caller is responsible for the terminator
  /// still naming \p Succ, if any.
  void removeSuccessor(BasicBlock *Succ);
  /// @}

private:
  unsigned Id;
  std::string Name;
  Function *Parent = nullptr;
  std::vector<std::unique_ptr<Instruction>> Instrs;
  std::vector<BasicBlock *> Succs;
  std::vector<BasicBlock *> Preds;
};

} // namespace ssalive

#endif // SSALIVE_IR_BASICBLOCK_H
