//===- ir/Interpreter.h - Reference IR executor -----------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fuel-limited interpreter for the IR, defined for SSA and non-SSA
/// programs alike (multiple assignments simply overwrite). φ-functions are
/// evaluated lazily with parallel-copy semantics on block entry, matching
/// the paper's Section 2.2 description of φ evaluation "on the way" from
/// the predecessor. The SSA construction/destruction tests run the same
/// inputs through the program before and after a transformation and demand
/// identical observable behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_INTERPRETER_H
#define SSALIVE_IR_INTERPRETER_H

#include <cstdint>
#include <vector>

namespace ssalive {

class Function;

/// Everything observable about one execution.
struct ExecutionResult {
  /// Why execution stopped.
  enum class Status {
    Returned,   ///< Reached a ret.
    OutOfFuel,  ///< Block-entry budget exhausted (looping program).
    ReadUndef,  ///< Read a value before any assignment (non-strict program).
  };

  Status Stop = Status::Returned;
  bool HasReturnValue = false;
  std::int64_t ReturnValue = 0;
  /// Ids of blocks in execution order (bounded by fuel).
  std::vector<unsigned> BlockTrace;
  /// Rolling hash over every Opaque instruction's inputs and output, in
  /// execution order. Catches dataflow divergence that the return value and
  /// block trace alone would miss.
  std::uint64_t ObservationHash = 0;
};

/// Executes \p F on \p Args. \p FuelBlocks bounds the number of block
/// entries, making every run terminate; a transformation that preserves the
/// CFG consumes identical fuel on the same input, so truncated traces stay
/// comparable.
ExecutionResult interpret(const Function &F,
                          const std::vector<std::int64_t> &Args,
                          unsigned FuelBlocks = 4096);

/// Returns true if two executions are observationally equal: same stop
/// status, same block trace, same observation hash, and (when both
/// returned) the same return value.
bool sameObservableBehavior(const ExecutionResult &A,
                            const ExecutionResult &B);

} // namespace ssalive

#endif // SSALIVE_IR_INTERPRETER_H
