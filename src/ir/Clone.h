//===- ir/Clone.h - Deep function cloning -----------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep copy of a function: fresh blocks, values and instructions with
/// identical ids, names, edges and operands. The SSA pass tests clone the
/// input, transform the clone, and compare interpreter behaviour against
/// the untouched original.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_IR_CLONE_H
#define SSALIVE_IR_CLONE_H

#include <memory>

namespace ssalive {

class Function;

/// Returns a structurally identical deep copy of \p F (same block ids,
/// value ids, instruction order, successor order).
std::unique_ptr<Function> cloneFunction(const Function &F);

} // namespace ssalive

#endif // SSALIVE_IR_CLONE_H
