//===- ir/IRParser.cpp - Textual IR input ---------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/Function.h"
#include "support/Debug.h"

#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <tuple>

using namespace ssalive;

namespace {

/// Recursive-descent parser over a single function body. Blocks and values
/// are created lazily on first mention, so forward references (loop φs,
/// forward jumps) need no second pass; terminators record pending successor
/// labels that are wired into CFG edges once all blocks exist.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  ParseResult run();

private:
  // Lexing helpers. The format is line-oriented only for readability;
  // lexing is plain whitespace-skipping over the whole buffer.
  void skipSpace() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '#' || C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '\n')
        ++Line;
      if (!std::isspace(static_cast<unsigned char>(C)))
        break;
      ++Pos;
    }
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *W) {
    skipSpace();
    size_t Len = std::strlen(W);
    if (Text.compare(Pos, Len, W) != 0)
      return false;
    size_t After = Pos + Len;
    if (After < Text.size() &&
        (std::isalnum(static_cast<unsigned char>(Text[After])) ||
         Text[After] == '_'))
      return false;
    Pos = After;
    return true;
  }

  std::optional<std::string> parseIdent() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.'))
      ++Pos;
    if (Pos == Start)
      return std::nullopt;
    return Text.substr(Start, Pos - Start);
  }

  std::optional<std::int64_t> parseInt() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == DigitsStart)
      return std::nullopt;
    return std::stoll(Text.substr(Start, Pos - Start));
  }

  // Entity lookup with lazy creation.
  Value *getValue(const std::string &Name) {
    auto [It, New] = ValuesByName.try_emplace(Name, nullptr);
    if (New)
      It->second = F->createValue(Name);
    return It->second;
  }

  BasicBlock *getBlock(const std::string &Name) {
    auto [It, New] = BlocksByName.try_emplace(Name, nullptr);
    if (New)
      It->second = F->createBlock(Name);
    return It->second;
  }

  std::optional<Value *> parseValueRef() {
    if (!consume('%'))
      return std::nullopt;
    auto Name = parseIdent();
    if (!Name)
      return std::nullopt;
    return getValue(*Name);
  }

  bool fail(const std::string &Msg) {
    Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  bool parseBody();
  bool parseBlock(const std::string &Label);
  bool parseInstruction(BasicBlock *B, bool &SawTerminator);

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
  std::string Error;
  std::unique_ptr<Function> F;
  std::map<std::string, Value *> ValuesByName;
  std::map<std::string, BasicBlock *> BlocksByName;
  /// Deferred (block, successor-label) pairs; resolved after parsing so the
  /// successor order matches the terminator operand order.
  std::vector<std::pair<BasicBlock *, std::string>> PendingEdges;
  /// Deferred φ incoming labels: (phi, operand index, label).
  std::vector<std::tuple<Instruction *, unsigned, std::string>> PendingPhis;
};

} // namespace

bool Parser::parseInstruction(BasicBlock *B, bool &SawTerminator) {
  // Terminators.
  if (consumeWord("jump")) {
    auto Label = parseIdent();
    if (!Label)
      return fail("expected jump target label");
    B->append(std::make_unique<Instruction>(Opcode::Jump, nullptr,
                                            std::vector<Value *>{}));
    PendingEdges.emplace_back(B, *Label);
    SawTerminator = true;
    return true;
  }
  if (consumeWord("branch")) {
    auto Cond = parseValueRef();
    if (!Cond)
      return fail("expected branch condition value");
    if (!consume(','))
      return fail("expected ',' after branch condition");
    auto TrueLabel = parseIdent();
    if (!TrueLabel || !consume(','))
      return fail("expected two branch target labels");
    auto FalseLabel = parseIdent();
    if (!FalseLabel)
      return fail("expected second branch target label");
    B->append(std::make_unique<Instruction>(Opcode::Branch, nullptr,
                                            std::vector<Value *>{*Cond}));
    PendingEdges.emplace_back(B, *TrueLabel);
    PendingEdges.emplace_back(B, *FalseLabel);
    SawTerminator = true;
    return true;
  }
  if (consumeWord("ret")) {
    std::vector<Value *> Ops;
    if (auto V = parseValueRef())
      Ops.push_back(*V);
    B->append(std::make_unique<Instruction>(Opcode::Ret, nullptr, Ops));
    SawTerminator = true;
    return true;
  }

  // Value-defining instructions: %name = op ...
  auto Result = parseValueRef();
  if (!Result)
    return fail("expected instruction");
  if (!consume('='))
    return fail("expected '=' after result value");

  struct BinOp {
    const char *Word;
    Opcode Op;
  };
  static const BinOp BinOps[] = {{"add", Opcode::Add},
                                 {"sub", Opcode::Sub},
                                 {"mul", Opcode::Mul},
                                 {"cmplt", Opcode::CmpLt},
                                 {"cmpeq", Opcode::CmpEq}};

  skipSpace();
  auto OpName = parseIdent();
  if (!OpName)
    return fail("expected opcode mnemonic");

  if (*OpName == "param" || *OpName == "const") {
    auto Imm = parseInt();
    if (!Imm)
      return fail("expected immediate after '" + *OpName + "'");
    Opcode Op = *OpName == "param" ? Opcode::Param : Opcode::Const;
    B->append(std::make_unique<Instruction>(Op, *Result,
                                            std::vector<Value *>{}, *Imm));
    return true;
  }

  if (*OpName == "copy") {
    auto Src = parseValueRef();
    if (!Src)
      return fail("expected copy source value");
    B->append(std::make_unique<Instruction>(Opcode::Copy, *Result,
                                            std::vector<Value *>{*Src}));
    return true;
  }

  for (const BinOp &BO : BinOps) {
    if (*OpName != BO.Word)
      continue;
    auto LHS = parseValueRef();
    if (!LHS || !consume(','))
      return fail("expected two operands");
    auto RHS = parseValueRef();
    if (!RHS)
      return fail("expected second operand");
    B->append(std::make_unique<Instruction>(
        BO.Op, *Result, std::vector<Value *>{*LHS, *RHS}));
    return true;
  }

  if (*OpName == "select") {
    auto C = parseValueRef();
    if (!C || !consume(','))
      return fail("expected select operands");
    auto T = parseValueRef();
    if (!T || !consume(','))
      return fail("expected select operands");
    auto E = parseValueRef();
    if (!E)
      return fail("expected select operands");
    B->append(std::make_unique<Instruction>(
        Opcode::Select, *Result, std::vector<Value *>{*C, *T, *E}));
    return true;
  }

  if (*OpName == "opaque") {
    std::vector<Value *> Ops;
    if (auto First = parseValueRef()) {
      Ops.push_back(*First);
      while (consume(',')) {
        auto Next = parseValueRef();
        if (!Next)
          return fail("expected operand after ','");
        Ops.push_back(*Next);
      }
    }
    B->append(std::make_unique<Instruction>(Opcode::Opaque, *Result, Ops));
    return true;
  }

  if (*OpName == "phi") {
    auto *Phi = new Instruction(Opcode::Phi, *Result, {});
    B->append(std::unique_ptr<Instruction>(Phi));
    unsigned Idx = 0;
    do {
      if (!consume('['))
        return fail("expected '[' in phi operand");
      auto V = parseValueRef();
      if (!V || !consume(','))
        return fail("expected phi operand value");
      auto Label = parseIdent();
      if (!Label || !consume(']'))
        return fail("expected phi incoming label");
      Phi->addOperand(*V);
      Phi->addIncomingBlock(nullptr); // Patched after edges resolve.
      PendingPhis.emplace_back(Phi, Idx, *Label);
      ++Idx;
    } while (consume(','));
    return true;
  }

  return fail("unknown opcode '" + *OpName + "'");
}

bool Parser::parseBlock(const std::string &Label) {
  BasicBlock *B = getBlock(Label);
  if (!B->empty())
    return fail("redefinition of block '" + Label + "'");
  bool SawTerminator = false;
  while (true) {
    skipSpace();
    if (Pos >= Text.size())
      return fail("unexpected end of input in block");
    if (Text[Pos] == '}')
      break;
    // A label introduces the next block: ident ':'.
    size_t Save = Pos;
    unsigned SaveLine = Line;
    if (auto Ident = parseIdent()) {
      if (consume(':')) {
        Pos = Save;
        Line = SaveLine;
        break;
      }
      Pos = Save;
      Line = SaveLine;
    }
    if (SawTerminator)
      return fail("instruction after terminator");
    if (!parseInstruction(B, SawTerminator))
      return false;
  }
  if (!SawTerminator)
    return fail("block '" + Label + "' lacks a terminator");
  return true;
}

bool Parser::parseBody() {
  if (!consumeWord("func"))
    return fail("expected 'func'");
  if (!consume('@'))
    return fail("expected '@' before function name");
  auto Name = parseIdent();
  if (!Name)
    return fail("expected function name");
  F = std::make_unique<Function>(*Name);
  if (!consume('{'))
    return fail("expected '{'");

  while (true) {
    skipSpace();
    if (consume('}'))
      break;
    auto Label = parseIdent();
    if (!Label || !consume(':'))
      return fail("expected block label");
    if (!parseBlock(*Label))
      return false;
  }

  // Wire deferred CFG edges in terminator order.
  for (auto &[Block, Label] : PendingEdges) {
    auto It = BlocksByName.find(Label);
    if (It == BlocksByName.end() || It->second->empty())
      return fail("jump to undefined block '" + Label + "'");
    Block->addSuccessor(It->second);
  }
  // Patch φ incoming blocks.
  for (auto &[Phi, Idx, Label] : PendingPhis) {
    auto It = BlocksByName.find(Label);
    if (It == BlocksByName.end())
      return fail("phi references undefined block '" + Label + "'");
    Phi->setIncomingBlock(Idx, It->second);
  }
  return true;
}

ParseResult Parser::run() {
  ParseResult R;
  if (!parseBody()) {
    R.Error = Error.empty() ? "parse error" : Error;
    return R;
  }
  skipSpace();
  if (Pos != Text.size()) {
    fail("trailing input after function body");
    R.Error = Error;
    return R;
  }
  R.Func = std::move(F);
  return R;
}

ParseResult ssalive::parseFunction(const std::string &Text) {
  return Parser(Text).run();
}

ModuleParseResult ssalive::parseModule(const std::string &Text) {
  ModuleParseResult R;
  // The grammar has exactly one brace pair per function, so the module
  // splits at every top-level '}' (outside comments). Each chunk reuses the
  // single-function parser; diagnostics are re-anchored to module lines.
  std::size_t ChunkStart = 0;
  std::size_t ChunkStartLine = 1;
  std::size_t Line = 1;
  unsigned FuncIndex = 0;
  bool InComment = false;
  for (std::size_t Pos = 0; Pos != Text.size(); ++Pos) {
    char C = Text[Pos];
    if (C == '\n') {
      ++Line;
      InComment = false;
      continue;
    }
    if (InComment)
      continue;
    if (C == '#' || C == ';') {
      InComment = true;
      continue;
    }
    if (C != '}')
      continue;
    ++FuncIndex;
    ParseResult FR =
        parseFunction(Text.substr(ChunkStart, Pos + 1 - ChunkStart));
    if (!FR.Func) {
      // Parser diagnostics are "line N: msg" relative to the chunk.
      std::size_t RelLine = 0;
      if (std::sscanf(FR.Error.c_str(), "line %zu:", &RelLine) == 1)
        FR.Error = "line " +
                   std::to_string(ChunkStartLine + RelLine - 1) +
                   FR.Error.substr(FR.Error.find(':'));
      R.Funcs.clear();
      R.Error = "function " + std::to_string(FuncIndex) + ", " + FR.Error;
      return R;
    }
    R.Funcs.push_back(std::move(FR.Func));
    ChunkStart = Pos + 1;
    ChunkStartLine = Line;
  }
  // Anything after the last '}' must be whitespace or comments.
  InComment = false;
  for (std::size_t Pos = ChunkStart; Pos != Text.size(); ++Pos) {
    char C = Text[Pos];
    if (C == '\n')
      InComment = false;
    else if (InComment)
      continue;
    else if (C == '#' || C == ';')
      InComment = true;
    else if (!std::isspace(static_cast<unsigned char>(C))) {
      R.Funcs.clear();
      R.Error = "trailing input after last function";
      return R;
    }
  }
  return R;
}
