//===- ir/Value.cpp - IR values -------------------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Value.h"

#include "ir/Instruction.h"
#include "support/Debug.h"

#include <algorithm>

using namespace ssalive;

BasicBlock *Value::defBlock() const { return ssaDef()->parent(); }

void Value::removeDef(Instruction *I) {
  auto It = std::find(Defs.begin(), Defs.end(), I);
  assert(It != Defs.end() && "removing unknown def");
  Defs.erase(It);
  ++DUEpoch;
}

void Value::removeUse(Instruction *User, unsigned OperandIndex) {
  auto It = std::find(Uses.begin(), Uses.end(), Use{User, OperandIndex});
  assert(It != Uses.end() && "removing unknown use");
  Uses.erase(It);
  ++DUEpoch;
}
