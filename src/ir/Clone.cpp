//===- ir/Clone.cpp - Deep function cloning -------------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Clone.h"

#include "ir/Function.h"
#include "support/Debug.h"

using namespace ssalive;

std::unique_ptr<Function> ssalive::cloneFunction(const Function &F) {
  auto New = std::make_unique<Function>(F.name());

  // Mirror blocks and values first so ids line up one-to-one.
  for (const auto &B : F.blocks()) {
    [[maybe_unused]] BasicBlock *NB = New->createBlock(B->name());
    assert(NB->id() == B->id() && "block id mismatch while cloning");
  }
  for (const auto &V : F.values()) {
    [[maybe_unused]] Value *NV = New->createValue(V->name());
    assert(NV->id() == V->id() && "value id mismatch while cloning");
  }

  // Edges, preserving successor/predecessor order.
  for (const auto &B : F.blocks())
    for (const BasicBlock *S : B->successors())
      New->block(B->id())->addSuccessor(New->block(S->id()));

  // Instructions.
  for (const auto &B : F.blocks()) {
    BasicBlock *NB = New->block(B->id());
    for (const auto &I : B->instructions()) {
      std::vector<Value *> Ops;
      Ops.reserve(I->numOperands());
      for (const Value *Op : I->operands())
        Ops.push_back(New->value(Op->id()));
      Value *Result =
          I->result() ? New->value(I->result()->id()) : nullptr;
      auto NI = std::make_unique<Instruction>(I->opcode(), Result,
                                              std::move(Ops), I->immediate());
      if (I->isPhi())
        for (const BasicBlock *In : I->incomingBlocks())
          NI->addIncomingBlock(New->block(In->id()));
      NB->append(std::move(NI));
    }
  }
  return New;
}
