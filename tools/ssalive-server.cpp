//===- tools/ssalive-server.cpp - Long-lived liveness server CLI ----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Front end of the liveness query server. Two transports:
//
//   ssalive-server --socket=/path/sock [--threads=N] [--shards=N]
//                  [--max-frame=BYTES]
//       Accepts any number of concurrent clients on a unix-domain
//       socket; runs until a client sends the Shutdown command (or the
//       process is signalled).
//
//   ssalive-server --tcp=[HOST:]PORT [--port-file=PATH]
//       Same, over TCP (IPv4; HOST defaults to 127.0.0.1). PORT 0 binds
//       an ephemeral port; --port-file writes the bound port to PATH
//       (write-then-rename, so a poller never reads a torn file) — the
//       handshake the smoke tests and spawned-client mode use. May be
//       combined with --socket: one acceptor serves both.
//
//   ssalive-server --stdio [--threads=N] [--max-frame=BYTES]
//       Serves exactly one session over stdin/stdout — the pipe
//       transport. ssalive-client --spawn uses this; so can any
//       build-system integration that wants a liveness oracle as a
//       subprocess. All logging goes to stderr (stdout is the protocol
//       channel).
//
// Observability:
//
//   --metrics-interval=SECONDS   Periodically dump the process-wide
//       telemetry registry in Prometheus text exposition format, plus a
//       final dump at shutdown. Goes to stderr unless --metrics-out is
//       given (then the file is rewritten atomically-ish each tick, the
//       shape a textfile-collector scrape expects).
//   --metrics-out=PATH           Destination file for the dumps.
//   --trace-out=PATH             Enable span tracing for the process
//       lifetime and write the collected spans as Chrome trace-event
//       JSON (chrome://tracing / Perfetto) at shutdown.
//
// The protocol is documented in src/server/Protocol.h.
//
//===----------------------------------------------------------------------===//

#include "server/LivenessServer.h"
#include "support/Telemetry.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

using namespace ssalive;
using namespace ssalive::server;

namespace {

struct CliOptions {
  std::string SocketPath;
  bool Tcp = false;
  std::string TcpHost;
  std::uint16_t TcpPort = 0;
  std::string PortFilePath;
  bool Stdio = false;
  unsigned Threads = 1;
  unsigned Shards = 1;
  std::size_t MaxFrame = protocol::DefaultMaxFrameBytes;
  unsigned MetricsIntervalSecs = 0; ///< 0 = no periodic dumps.
  std::string MetricsOutPath;       ///< Empty = stderr.
  std::string TraceOutPath;         ///< Empty = tracing disabled.
};

bool parseUnsigned(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    std::uint64_t N = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(9);
    } else if (Arg.rfind("--tcp=", 0) == 0) {
      std::string Spec = Arg.substr(6);
      std::size_t Colon = Spec.rfind(':');
      std::string PortStr =
          Colon == std::string::npos ? Spec : Spec.substr(Colon + 1);
      if (Colon != std::string::npos)
        Opts.TcpHost = Spec.substr(0, Colon);
      if (!parseUnsigned(PortStr.c_str(), N) || N > 65535) {
        std::fprintf(stderr, "bad --tcp spec '%s' (want [HOST:]PORT)\n",
                     Spec.c_str());
        return false;
      }
      Opts.Tcp = true;
      Opts.TcpPort = static_cast<std::uint16_t>(N);
    } else if (Arg.rfind("--port-file=", 0) == 0) {
      Opts.PortFilePath = Arg.substr(12);
    } else if (Arg == "--stdio") {
      Opts.Stdio = true;
    } else if (Arg.rfind("--threads=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--shards=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 9, N) && N != 0) {
      Opts.Shards = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-frame=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 12, N) && N != 0) {
      Opts.MaxFrame = N;
    } else if (Arg.rfind("--metrics-interval=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 19, N) && N != 0) {
      Opts.MetricsIntervalSecs = static_cast<unsigned>(N);
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opts.MetricsOutPath = Arg.substr(14);
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      Opts.TraceOutPath = Arg.substr(12);
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  bool HasSocket = !Opts.SocketPath.empty() || Opts.Tcp;
  if (Opts.Stdio == HasSocket) {
    std::fprintf(stderr, "exactly one of --stdio or a socket transport "
                         "(--socket=PATH / --tcp=[HOST:]PORT) is required\n");
    return false;
  }
  return true;
}

/// Publishes the bound TCP port for pollers (spawned-client mode, smoke
/// tests): write-then-rename so a reader never sees a torn file.
bool writePortFile(const std::string &Path, std::uint16_t Port) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out)
      return false;
    Out << Port << "\n";
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

void dumpMetrics(const CliOptions &Opts) {
  std::string Text =
      telemetry::toPrometheusText(telemetry::Registry::global().snapshot());
  if (Opts.MetricsOutPath.empty()) {
    std::fprintf(stderr, "%s", Text.c_str());
    return;
  }
  // Write-then-rename so a concurrent reader never sees a torn file.
  std::string Tmp = Opts.MetricsOutPath + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    Out << Text;
  }
  if (std::rename(Tmp.c_str(), Opts.MetricsOutPath.c_str()) != 0)
    std::fprintf(stderr, "ssalive-server: cannot write %s\n",
                 Opts.MetricsOutPath.c_str());
}

/// Ticker thread for --metrics-interval; interruptible sleep so shutdown
/// does not wait out the remainder of a tick.
class MetricsTicker {
public:
  explicit MetricsTicker(const CliOptions &Opts) : Opts(Opts) {
    if (Opts.MetricsIntervalSecs != 0)
      Thread = std::thread([this] { loop(); });
  }

  ~MetricsTicker() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    CV.notify_all();
    if (Thread.joinable())
      Thread.join();
  }

private:
  void loop() {
    std::unique_lock<std::mutex> Lock(M);
    while (!Stop) {
      if (CV.wait_for(Lock, std::chrono::seconds(Opts.MetricsIntervalSecs),
                      [this] { return Stop; }))
        return;
      dumpMetrics(Opts);
    }
  }

  const CliOptions &Opts;
  std::mutex M;
  std::condition_variable CV;
  bool Stop = false;
  std::thread Thread;
};

void writeTrace(const std::string &Path) {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out) {
    std::fprintf(stderr, "ssalive-server: cannot write %s\n", Path.c_str());
    return;
  }
  Out << telemetry::TraceRecorder::toChromeJson();
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  if (!Opts.TraceOutPath.empty())
    telemetry::TraceRecorder::setEnabled(true);

  ServerConfig Cfg;
  Cfg.Threads = Opts.Threads;
  Cfg.Shards = Opts.Shards;
  Cfg.MaxFrameBytes = Opts.MaxFrame;
  int Exit = 0;
  {
    LivenessServer Server(Cfg);
    MetricsTicker Ticker(Opts);

    if (Opts.Stdio) {
      Server.serveStream(/*InFd=*/0, /*OutFd=*/1);
    } else {
      std::string Err;
      if (!Opts.SocketPath.empty()) {
        if (!Server.listenUnix(Opts.SocketPath, Err)) {
          std::fprintf(stderr, "%s\n", Err.c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "ssalive-server: listening on %s (%u shard(s) x %u "
                     "pool threads)\n",
                     Opts.SocketPath.c_str(), Server.router().numShards(),
                     Server.sessions().pool().numThreads());
      }
      if (Opts.Tcp) {
        if (!Server.listenTcp(Opts.TcpHost, Opts.TcpPort, Err)) {
          std::fprintf(stderr, "%s\n", Err.c_str());
          return 1;
        }
        std::fprintf(stderr,
                     "ssalive-server: listening on %s:%u (%u shard(s) x %u "
                     "pool threads)\n",
                     Opts.TcpHost.empty() ? "127.0.0.1"
                                          : Opts.TcpHost.c_str(),
                     Server.boundTcpPort(), Server.router().numShards(),
                     Server.sessions().pool().numThreads());
        if (!Opts.PortFilePath.empty() &&
            !writePortFile(Opts.PortFilePath, Server.boundTcpPort())) {
          std::fprintf(stderr, "ssalive-server: cannot write %s\n",
                       Opts.PortFilePath.c_str());
          return 1;
        }
      }
      Server.start();
      Server.wait();
      std::fprintf(stderr,
                   "ssalive-server: shut down after %llu connection(s)\n",
                   static_cast<unsigned long long>(
                       Server.connectionsServed()));
    }
  } // Server destruction folds the final per-session/driver counters in.

  if (Opts.MetricsIntervalSecs != 0 || !Opts.MetricsOutPath.empty())
    dumpMetrics(Opts);
  if (!Opts.TraceOutPath.empty())
    writeTrace(Opts.TraceOutPath);
  return Exit;
}
