//===- tools/ssalive-server.cpp - Long-lived liveness server CLI ----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Front end of the liveness query server. Two transports:
//
//   ssalive-server --socket=/path/sock [--threads=N] [--max-frame=BYTES]
//       Accepts any number of concurrent clients on a unix-domain
//       socket; runs until a client sends the Shutdown command (or the
//       process is signalled).
//
//   ssalive-server --stdio [--threads=N] [--max-frame=BYTES]
//       Serves exactly one session over stdin/stdout — the pipe
//       transport. ssalive-client --spawn uses this; so can any
//       build-system integration that wants a liveness oracle as a
//       subprocess. All logging goes to stderr (stdout is the protocol
//       channel).
//
// The protocol is documented in src/server/Protocol.h.
//
//===----------------------------------------------------------------------===//

#include "server/LivenessServer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace ssalive;
using namespace ssalive::server;

namespace {

struct CliOptions {
  std::string SocketPath;
  bool Stdio = false;
  unsigned Threads = 1;
  std::size_t MaxFrame = protocol::DefaultMaxFrameBytes;
};

bool parseUnsigned(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    std::uint64_t N = 0;
    if (Arg.rfind("--socket=", 0) == 0) {
      Opts.SocketPath = Arg.substr(9);
    } else if (Arg == "--stdio") {
      Opts.Stdio = true;
    } else if (Arg.rfind("--threads=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--max-frame=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 12, N) && N != 0) {
      Opts.MaxFrame = N;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.Stdio == !Opts.SocketPath.empty()) {
    std::fprintf(stderr,
                 "exactly one of --stdio or --socket=PATH is required\n");
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  ServerConfig Cfg;
  Cfg.Threads = Opts.Threads;
  Cfg.MaxFrameBytes = Opts.MaxFrame;
  LivenessServer Server(Cfg);

  if (Opts.Stdio) {
    Server.serveStream(/*InFd=*/0, /*OutFd=*/1);
    return 0;
  }

  std::string Err;
  if (!Server.listenUnix(Opts.SocketPath, Err)) {
    std::fprintf(stderr, "%s\n", Err.c_str());
    return 1;
  }
  std::fprintf(stderr, "ssalive-server: listening on %s (%u pool threads)\n",
               Opts.SocketPath.c_str(), Server.sessions().pool().numThreads());
  Server.start();
  Server.wait();
  std::fprintf(stderr, "ssalive-server: shut down after %llu connection(s)\n",
               static_cast<unsigned long long>(Server.connectionsServed()));
  return 0;
}
