//===- tools/ssalive-batch.cpp - Module-level batch liveness CLI ----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Batch liveness driver front end: parses a multi-function .ssair module
// (or synthesizes a SPEC-profile one), runs a query workload through the
// concurrent pipeline with a selectable backend, and prints a throughput
// report.
//
//   ssalive-batch [options] [module.ssair]
//     --backend=propagated|filtered|sorted|bitset|block-sweep|
//               dataflow|path-exploration
//                 propagated/filtered run on the BitMatrix arena layout;
//                 bitset is the legacy per-row-BitVector baseline;
//                 block-sweep answers via whole-interval liveInBlocks
//                 sweeps with per-value query grouping
//     --plane=block-id|nums|mask|prepared
//                 LiveCheck entry point per query (default prepared — the
//                 cached per-value plane; the others re-derive the
//                 variable per query and exist as differential baselines)
//     --schedule=stealing|static
//                 phase-2 scheduling policy (default stealing: workers
//                 claim chunks and steal from each other's queues; static
//                 reproduces the deterministic contiguous spans). Answers
//                 are byte-identical either way; --verify proves it.
//     --threads=N     worker threads (default 1; 0 = hardware concurrency)
//     --queries=N     workload size (default 500000)
//     --seed=S        workload RNG seed (default 42)
//     --repeat=R      run the workload R times against one driver
//                     (default 2: the second run measures the amortized,
//                     cache-warm regime)
//     --generate=N    ignore input file, synthesize N SPEC-profile
//                     functions (default when no file is given: 64)
//     --verify        cross-check the parallel answers against a
//                     single-threaded run
//     --verify-all    additionally demand every other backend agrees on
//                     the whole workload
//     --expect-checksum=HEX
//                     demand the answer checksum equals HEX (16 hex
//                     digits) — lets CI pin an expected result and lets
//                     the test suite prove a deliberately corrupted
//                     expectation fails the run
//
// Every verification failure is *latched*: all checks run, each mismatch
// is reported, and the process exits nonzero if any check failed — a
// later backend agreeing must never wash out an earlier mismatch.
//
//===----------------------------------------------------------------------===//

#include "ToolUtil.h"
#include "ir/Function.h"
#include "pipeline/BatchLivenessDriver.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace ssalive;

namespace {

struct CliOptions {
  BatchBackend Backend = BatchBackend::LiveCheckPropagated;
  QueryPlane Plane = QueryPlane::Prepared;
  BatchSchedule Schedule = BatchSchedule::Stealing;
  unsigned Threads = 1;
  std::size_t Queries = 500000;
  std::uint64_t Seed = 42;
  unsigned Repeat = 2;
  unsigned Generate = 0;
  bool Verify = false;
  bool VerifyAll = false;
  bool HasExpectedChecksum = false;
  std::uint64_t ExpectedChecksum = 0;
  std::string InputPath;
};

bool parseUnsigned(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    std::uint64_t N = 0;
    if (Arg.rfind("--backend=", 0) == 0) {
      if (!parseBatchBackend(Arg.substr(10), Opts.Backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", Arg.c_str() + 10);
        return false;
      }
    } else if (Arg.rfind("--plane=", 0) == 0) {
      if (!parseQueryPlane(Arg.substr(8), Opts.Plane)) {
        std::fprintf(stderr, "unknown query plane '%s'\n", Arg.c_str() + 8);
        return false;
      }
    } else if (Arg.rfind("--schedule=", 0) == 0) {
      if (!parseBatchSchedule(Arg.substr(11), Opts.Schedule)) {
        std::fprintf(stderr, "unknown schedule '%s'\n", Arg.c_str() + 11);
        return false;
      }
    } else if (Arg.rfind("--threads=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--queries=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Queries = N;
    } else if (Arg.rfind("--seed=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 7, N)) {
      Opts.Seed = N;
    } else if (Arg.rfind("--repeat=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 9, N) && N != 0) {
      Opts.Repeat = static_cast<unsigned>(N);
    } else if (Arg.rfind("--generate=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 11, N) && N != 0) {
      Opts.Generate = static_cast<unsigned>(N);
    } else if (Arg == "--verify") {
      Opts.Verify = true;
    } else if (Arg == "--verify-all") {
      Opts.Verify = true;
      Opts.VerifyAll = true;
    } else if (Arg.rfind("--expect-checksum=", 0) == 0) {
      char *End = nullptr;
      Opts.ExpectedChecksum = std::strtoull(Arg.c_str() + 18, &End, 16);
      if (!End || *End != '\0' || End == Arg.c_str() + 18) {
        std::fprintf(stderr, "bad checksum '%s'\n", Arg.c_str() + 18);
        return false;
      }
      Opts.HasExpectedChecksum = true;
      Opts.Verify = true;
    } else if (!Arg.empty() && Arg[0] != '-' && Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.InputPath.empty() && Opts.Generate == 0)
    Opts.Generate = 64;
  return true;
}

std::vector<std::unique_ptr<Function>> loadModule(const CliOptions &Opts) {
  if (Opts.InputPath.empty())
    return tool::synthesizeModule(Opts.Generate, Opts.Seed);

  std::string Text = tool::readFileOrEmpty(Opts.InputPath);
  if (Text.empty())
    return {};
  ModuleParseResult R = parseModule(Text);
  if (!R.Error.empty()) {
    std::fprintf(stderr, "%s: %s\n", Opts.InputPath.c_str(),
                 R.Error.c_str());
    return {};
  }
  // Liveness checking requires strict SSA; drop (with a warning) any
  // function the verifier rejects rather than answering garbage for it.
  std::vector<std::unique_ptr<Function>> Module;
  for (auto &F : R.Funcs) {
    VerifyResult V = verifySSA(*F);
    if (!V.ok()) {
      std::fprintf(stderr, "warning: skipping non-SSA function @%s: %s\n",
                   F->name().c_str(), V.message().c_str());
      continue;
    }
    Module.push_back(std::move(F));
  }
  return Module;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;

  std::vector<std::unique_ptr<Function>> Module = loadModule(Opts);
  if (Module.empty()) {
    std::fprintf(stderr, "no functions to run\n");
    return 1;
  }
  std::vector<const Function *> Funcs;
  std::size_t TotalBlocks = 0, TotalValues = 0;
  for (const auto &F : Module) {
    Funcs.push_back(F.get());
    TotalBlocks += F->numBlocks();
    TotalValues += F->numValues();
  }

  std::vector<BatchQuery> Workload =
      BatchLivenessDriver::generateWorkload(Funcs, Opts.Seed, Opts.Queries);
  if (Workload.empty()) {
    std::fprintf(stderr, "no queryable values in the module\n");
    return 1;
  }

  BatchOptions DOpts;
  DOpts.Backend = Opts.Backend;
  DOpts.Plane = Opts.Plane;
  DOpts.Schedule = Opts.Schedule;
  DOpts.Threads = Opts.Threads;
  BatchLivenessDriver Driver(Funcs, DOpts);

  std::printf("ssalive-batch: %zu functions (%zu blocks, %zu values), "
              "%zu queries, backend=%s, plane=%s, schedule=%s, threads=%u\n",
              Funcs.size(), TotalBlocks, TotalValues, Workload.size(),
              batchBackendName(Opts.Backend), queryPlaneName(Opts.Plane),
              batchScheduleName(Opts.Schedule), Driver.numThreads());

  BatchResult Last;
  for (unsigned Run = 0; Run != Opts.Repeat; ++Run) {
    Last = Driver.run(Workload);
    LiveCheckStats Engine = Last.totalEngineStats();
    std::uint64_t Positive = 0;
    for (const BatchThreadStats &S : Last.PerThread)
      Positive += S.PositiveAnswers;
    std::printf("  run %u%s: precompute %.2f ms, queries %.2f ms "
                "(%.0f q/s), %llu live (%.1f%%), %llu targets visited\n",
                Run + 1, Run == 0 ? " (cold)" : " (warm)",
                Last.PrecomputeMillis, Last.QueryMillis,
                Last.queriesPerSecond(),
                static_cast<unsigned long long>(Positive),
                100.0 * double(Positive) / double(Workload.size()),
                static_cast<unsigned long long>(Engine.TargetsVisited));
  }

  AnalysisManager::CacheCounters C = Driver.analysisManager().counters();
  std::printf("  analysis cache: %llu misses, %llu hits, %llu "
              "invalidations\n",
              static_cast<unsigned long long>(C.Misses),
              static_cast<unsigned long long>(C.Hits),
              static_cast<unsigned long long>(C.Invalidations));
  std::printf("  checksum: %016llx\n",
              static_cast<unsigned long long>(Last.checksum()));

  if (Opts.Verify) {
    // Every check runs and every mismatch latches: exiting early (or
    // letting the most recent comparison overwrite the verdict) would
    // report success whenever the *last* backend checked happens to
    // agree. The latch-pin ctest feeds a corrupted --expect-checksum
    // first and asserts the run still fails after all later checks pass.
    bool Failed = false;

    if (Opts.HasExpectedChecksum) {
      if (Last.checksum() != Opts.ExpectedChecksum) {
        std::fprintf(stderr,
                     "FAIL: checksum %016llx does not match expected "
                     "%016llx\n",
                     static_cast<unsigned long long>(Last.checksum()),
                     static_cast<unsigned long long>(Opts.ExpectedChecksum));
        Failed = true;
      } else {
        std::printf("  verify: checksum matches expectation\n");
      }
    }

    BatchOptions SOpts = DOpts;
    SOpts.Threads = 1;
    BatchLivenessDriver Single(Funcs, SOpts);
    BatchResult Ref = Single.run(Workload);
    if (Ref.Answers != Last.Answers) {
      std::fprintf(stderr, "FAIL: parallel answers differ from "
                           "single-threaded reference\n");
      Failed = true;
    } else {
      std::printf("  verify: %u-thread answers identical to "
                  "single-threaded reference\n",
                  Driver.numThreads());
    }

    // Schedule/grouping differential: work-stealing with locality-grouped
    // chunks must answer byte-identically to deterministic static spans in
    // per-query arrival order — the pre-scheduler behavior kept as an
    // in-tool oracle.
    {
      BatchOptions AOpts = DOpts;
      AOpts.Schedule = BatchSchedule::Static;
      AOpts.GroupChunks = false;
      BatchLivenessDriver Arrival(Funcs, AOpts);
      BatchResult ArrivalRef = Arrival.run(Workload);
      if (ArrivalRef.Answers != Last.Answers) {
        std::fprintf(stderr, "FAIL: %s/grouped answers differ from the "
                             "static arrival-order schedule\n",
                     batchScheduleName(Opts.Schedule));
        Failed = true;
      } else {
        std::printf("  verify: answers identical under static "
                    "arrival-order scheduling\n");
      }
    }

    // Plane differential: the cached prepared plane (or whichever plane
    // was selected) must answer bit-identically to the classic block-id
    // entry points on the same backend. Skipped when the backend ignores
    // the plane selector (block-sweep answers through interval sweeps
    // either way — the comparison would be vacuous).
    if (batchBackendUsesLiveCheck(Opts.Backend) &&
        Opts.Backend != BatchBackend::LiveCheckBlockSweep &&
        Opts.Plane != QueryPlane::BlockId) {
      BatchOptions POpts = SOpts;
      POpts.Plane = QueryPlane::BlockId;
      BatchLivenessDriver BlockId(Funcs, POpts);
      BatchResult PlaneRef = BlockId.run(Workload);
      if (PlaneRef.Answers != Last.Answers) {
        std::fprintf(stderr, "FAIL: %s plane answers differ from the "
                             "block-id plane\n",
                     queryPlaneName(Opts.Plane));
        Failed = true;
      } else {
        std::printf("  verify: %s plane identical to block-id plane\n",
                    queryPlaneName(Opts.Plane));
      }
    }

    if (Opts.VerifyAll) {
      for (BatchBackend B :
           {BatchBackend::LiveCheckPropagated, BatchBackend::LiveCheckFiltered,
            BatchBackend::LiveCheckSorted, BatchBackend::LiveCheckBitset,
            BatchBackend::LiveCheckBlockSweep, BatchBackend::Dataflow,
            BatchBackend::PathExploration}) {
        if (B == Opts.Backend)
          continue;
        BatchOptions BOpts = SOpts;
        BOpts.Backend = B;
        BatchLivenessDriver Other(Funcs, BOpts);
        BatchResult OtherRes = Other.run(Workload);
        if (OtherRes.Answers != Last.Answers) {
          std::fprintf(stderr, "FAIL: backend %s disagrees with %s\n",
                       batchBackendName(B),
                       batchBackendName(Opts.Backend));
          Failed = true;
        } else {
          std::printf("  verify: backend %s agrees\n", batchBackendName(B));
        }
      }
    }

    if (Failed) {
      std::fprintf(stderr, "FAIL: verification failed (see above)\n");
      return 1;
    }
  }
  return 0;
}
