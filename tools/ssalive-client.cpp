//===- tools/ssalive-client.cpp - Liveness server client CLI --------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Drives a running (or freshly spawned) ssalive-server through the wire
// protocol: loads a module, streams query batches and CFG-edit commands,
// and optionally verifies every reply byte-for-byte against an in-process
// BatchLivenessDriver oracle built from the exact bytes that were sent.
//
//   ssalive-client --connect=/path/sock [options]      talk to a server
//   ssalive-client --connect-tcp=[HOST:]PORT [options] over TCP (IPv4)
//   ssalive-client --spawn=./ssalive-server [options]  spawn one first
//     --transport=pipe|unix|tcp  with --spawn: speak over stdin/stdout
//                             pipes (default), a temporary unix socket,
//                             or TCP on a loopback ephemeral port
//     --resume                open a resumable (journaling) session via
//                             the Resume handshake, then drop the
//                             connection between repeat runs and
//                             re-attach with Resume(id, high-water mark)
//                             — exercises the server's park/replay plane
//                             end to end (needs a reconnectable
//                             transport, i.e. not pipe)
//     --backend=NAME          propagated|filtered|sorted|bitset|
//                             block-sweep|dataflow|path-exploration
//     --plane=NAME            block-id|nums|mask|prepared (LiveCheck
//                             entry point used per query; default
//                             prepared — the server-side cached plane)
//     --generate=N            synthesize N SPEC-profile functions
//                             (default 8 when no module file is given)
//     --seed=S --queries=N --batch=K --repeat=R
//     --edits=E               CFG-edit commands sent between repeats,
//                             routed through the server's refresh plane
//     --threads=N             pool threads for a spawned server
//     --verify                byte-compare every reply against the oracle
//     --metrics               fetch the server's telemetry registry via
//                             the Metrics opcode and print a summary
//     --metrics-out=PATH      write that dump as Prometheus text
//     [module.ssair]          load a module file instead of synthesizing
//
// Exit status: 0 = success, 1 = usage/transport failure, 2 = a reply
// differed from the oracle.
//
//===----------------------------------------------------------------------===//

#include "ToolUtil.h"
#include "pipeline/BatchLivenessDriver.h"
#include "server/Protocol.h"
#include "support/Telemetry.h"
#include "workload/CFGMutator.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace ssalive;
namespace proto = ssalive::protocol;

namespace {

struct CliOptions {
  std::string ConnectPath;
  std::string ConnectTcpHost; ///< With ConnectTcpPort != 0 or HasConnectTcp.
  std::uint16_t ConnectTcpPort = 0;
  bool HasConnectTcp = false;
  std::string SpawnBinary;
  bool UnixTransport = false;
  bool TcpTransport = false;
  bool Resume = false;
  BatchBackend Backend = BatchBackend::LiveCheckPropagated;
  QueryPlane Plane = QueryPlane::Prepared;
  unsigned Generate = 0;
  std::uint64_t Seed = 42;
  std::size_t Queries = 200000;
  std::size_t Batch = 4096;
  unsigned Repeat = 2;
  unsigned Edits = 0;
  unsigned Threads = 1;
  unsigned Shards = 1; ///< Worker shards for a --spawn'ed server.
  bool Verify = false;
  bool Metrics = false;
  std::string MetricsOutPath;
  std::string InputPath;
};

bool parseUnsigned(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    std::uint64_t N = 0;
    if (Arg.rfind("--connect=", 0) == 0) {
      Opts.ConnectPath = Arg.substr(10);
    } else if (Arg.rfind("--connect-tcp=", 0) == 0) {
      std::string Spec = Arg.substr(14);
      std::size_t Colon = Spec.rfind(':');
      std::string PortStr =
          Colon == std::string::npos ? Spec : Spec.substr(Colon + 1);
      if (Colon != std::string::npos)
        Opts.ConnectTcpHost = Spec.substr(0, Colon);
      if (!parseUnsigned(PortStr.c_str(), N) || N == 0 || N > 65535) {
        std::fprintf(stderr, "bad --connect-tcp spec '%s' (want "
                             "[HOST:]PORT)\n",
                     Spec.c_str());
        return false;
      }
      Opts.ConnectTcpPort = static_cast<std::uint16_t>(N);
      Opts.HasConnectTcp = true;
    } else if (Arg.rfind("--spawn=", 0) == 0) {
      Opts.SpawnBinary = Arg.substr(8);
    } else if (Arg == "--transport=pipe") {
      Opts.UnixTransport = Opts.TcpTransport = false;
    } else if (Arg == "--transport=unix") {
      Opts.UnixTransport = true;
      Opts.TcpTransport = false;
    } else if (Arg == "--transport=tcp") {
      Opts.TcpTransport = true;
      Opts.UnixTransport = false;
    } else if (Arg == "--resume") {
      Opts.Resume = true;
    } else if (Arg.rfind("--backend=", 0) == 0) {
      if (!parseBatchBackend(Arg.substr(10), Opts.Backend)) {
        std::fprintf(stderr, "unknown backend '%s'\n", Arg.c_str() + 10);
        return false;
      }
    } else if (Arg.rfind("--plane=", 0) == 0) {
      if (!parseQueryPlane(Arg.substr(8), Opts.Plane)) {
        std::fprintf(stderr, "unknown query plane '%s'\n", Arg.c_str() + 8);
        return false;
      }
    } else if (Arg.rfind("--generate=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 11, N) && N != 0) {
      Opts.Generate = static_cast<unsigned>(N);
    } else if (Arg.rfind("--seed=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 7, N)) {
      Opts.Seed = N;
    } else if (Arg.rfind("--queries=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Queries = N;
    } else if (Arg.rfind("--batch=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 8, N) && N != 0) {
      Opts.Batch = N;
    } else if (Arg.rfind("--repeat=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 9, N) && N != 0) {
      Opts.Repeat = static_cast<unsigned>(N);
    } else if (Arg.rfind("--edits=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 8, N)) {
      Opts.Edits = static_cast<unsigned>(N);
    } else if (Arg.rfind("--threads=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 10, N)) {
      Opts.Threads = static_cast<unsigned>(N);
    } else if (Arg.rfind("--shards=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 9, N) && N != 0) {
      Opts.Shards = static_cast<unsigned>(N);
    } else if (Arg == "--verify") {
      Opts.Verify = true;
    } else if (Arg == "--metrics") {
      Opts.Metrics = true;
    } else if (Arg.rfind("--metrics-out=", 0) == 0) {
      Opts.Metrics = true;
      Opts.MetricsOutPath = Arg.substr(14);
    } else if (!Arg.empty() && Arg[0] != '-' && Opts.InputPath.empty()) {
      Opts.InputPath = Arg;
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  unsigned Endpoints = (!Opts.ConnectPath.empty() ? 1 : 0) +
                       (Opts.HasConnectTcp ? 1 : 0) +
                       (!Opts.SpawnBinary.empty() ? 1 : 0);
  if (Endpoints != 1) {
    std::fprintf(stderr,
                 "exactly one of --connect=PATH, --connect-tcp=[HOST:]PORT, "
                 "or --spawn=BINARY is required\n");
    return false;
  }
  bool PipeTransport = !Opts.SpawnBinary.empty() && !Opts.UnixTransport &&
                       !Opts.TcpTransport;
  if (Opts.Resume && PipeTransport) {
    std::fprintf(stderr, "--resume needs a reconnectable transport "
                         "(--connect, --connect-tcp, or --transport="
                         "unix|tcp)\n");
    return false;
  }
  if (Opts.InputPath.empty() && Opts.Generate == 0)
    Opts.Generate = 8;
  return true;
}

/// The transport endpoint: fds plus the spawned server (if any), and the
/// dial-back coordinates --resume needs to reconnect after a drop.
struct Connection {
  int InFd = -1;  ///< Replies arrive here.
  int OutFd = -1; ///< Requests go here.
  pid_t Child = -1;
  std::string SocketPath; ///< Unlinked on close when we created it.
  std::string PortFile;   ///< Ditto, for a spawned TCP server.
  std::string DialUnixPath; ///< Non-empty: redial over unix.
  std::string DialTcpHost;  ///< With DialTcpPort != 0: redial over TCP.
  std::uint16_t DialTcpPort = 0;

  bool redialable() const {
    return !DialUnixPath.empty() || DialTcpPort != 0;
  }

  /// Drops just the stream — the server (ours or not) stays up, which is
  /// exactly the mid-stream failure --resume then recovers from.
  void dropStream() {
    if (OutFd >= 0 && OutFd != InFd)
      ::close(OutFd);
    if (InFd >= 0)
      ::close(InFd);
    InFd = OutFd = -1;
  }

  /// Dials the endpoint again after dropStream(); false when exhausted.
  bool redial();

  void close() {
    if (OutFd >= 0 && OutFd != InFd)
      ::close(OutFd);
    if (InFd >= 0)
      ::close(InFd);
    InFd = OutFd = -1;
    if (Child > 0) {
      // A --stdio server exits on pipe EOF, but a --socket server keeps
      // accepting until a protocol Shutdown — which a client bailing out
      // on a verification failure never sent. Give the child a moment to
      // exit on its own, then terminate it; blocking in waitpid here
      // would turn every post-connect failure into a hang.
      int Status = 0;
      bool Exited = false;
      for (int Try = 0; Try != 100; ++Try) {
        if (::waitpid(Child, &Status, WNOHANG) == Child) {
          Exited = true;
          break;
        }
        ::usleep(10000);
      }
      if (!Exited) {
        ::kill(Child, SIGTERM);
        ::waitpid(Child, &Status, 0);
      }
      Child = -1;
    }
    if (!SocketPath.empty())
      ::unlink(SocketPath.c_str());
    if (!PortFile.empty())
      ::unlink(PortFile.c_str());
  }
};

bool spawnPipeServer(const CliOptions &Opts, Connection &Conn) {
  int ToServer[2], FromServer[2];
  if (::pipe(ToServer) != 0 || ::pipe(FromServer) != 0) {
    std::perror("pipe");
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::perror("fork");
    return false;
  }
  if (Pid == 0) {
    ::dup2(ToServer[0], 0);
    ::dup2(FromServer[1], 1);
    ::close(ToServer[0]);
    ::close(ToServer[1]);
    ::close(FromServer[0]);
    ::close(FromServer[1]);
    std::string ThreadsArg = "--threads=" + std::to_string(Opts.Threads);
    std::string ShardsArg = "--shards=" + std::to_string(Opts.Shards);
    ::execl(Opts.SpawnBinary.c_str(), Opts.SpawnBinary.c_str(), "--stdio",
            ThreadsArg.c_str(), ShardsArg.c_str(),
            static_cast<char *>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  ::close(ToServer[0]);
  ::close(FromServer[1]);
  Conn.OutFd = ToServer[1];
  Conn.InFd = FromServer[0];
  Conn.Child = Pid;
  return true;
}

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(const std::string &Host, std::uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  const char *HostC = Host.empty() ? "127.0.0.1" : Host.c_str();
  if (::inet_pton(AF_INET, HostC, &Addr.sin_addr) != 1)
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

bool Connection::redial() {
  int Fd = !DialUnixPath.empty() ? connectUnix(DialUnixPath)
                                 : connectTcp(DialTcpHost, DialTcpPort);
  if (Fd < 0)
    return false;
  InFd = OutFd = Fd;
  return true;
}

bool spawnUnixServer(const CliOptions &Opts, Connection &Conn) {
  std::string Path = "/tmp/ssalive-client-" + std::to_string(::getpid()) +
                     ".sock";
  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::perror("fork");
    return false;
  }
  if (Pid == 0) {
    std::string SocketArg = "--socket=" + Path;
    std::string ThreadsArg = "--threads=" + std::to_string(Opts.Threads);
    std::string ShardsArg = "--shards=" + std::to_string(Opts.Shards);
    ::execl(Opts.SpawnBinary.c_str(), Opts.SpawnBinary.c_str(),
            SocketArg.c_str(), ThreadsArg.c_str(), ShardsArg.c_str(),
            static_cast<char *>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  // The server needs a moment to bind; retry for up to ~5 seconds.
  for (int Try = 0; Try != 250; ++Try) {
    int Fd = connectUnix(Path);
    if (Fd >= 0) {
      Conn.InFd = Conn.OutFd = Fd;
      Conn.Child = Pid;
      Conn.SocketPath = Path;
      Conn.DialUnixPath = Path;
      return true;
    }
    ::usleep(20000);
  }
  std::fprintf(stderr, "could not connect to spawned server at %s\n",
               Path.c_str());
  ::kill(Pid, SIGKILL);
  ::waitpid(Pid, nullptr, 0);
  return false;
}

bool spawnTcpServer(const CliOptions &Opts, Connection &Conn) {
  // The server binds an ephemeral loopback port and publishes it through
  // a port file (write-then-rename on its side, so a parsed read is a
  // complete read).
  std::string PortFile =
      "/tmp/ssalive-client-" + std::to_string(::getpid()) + ".port";
  ::unlink(PortFile.c_str());
  pid_t Pid = ::fork();
  if (Pid < 0) {
    std::perror("fork");
    return false;
  }
  if (Pid == 0) {
    std::string PortFileArg = "--port-file=" + PortFile;
    std::string ThreadsArg = "--threads=" + std::to_string(Opts.Threads);
    std::string ShardsArg = "--shards=" + std::to_string(Opts.Shards);
    ::execl(Opts.SpawnBinary.c_str(), Opts.SpawnBinary.c_str(),
            "--tcp=127.0.0.1:0", PortFileArg.c_str(), ThreadsArg.c_str(),
            ShardsArg.c_str(), static_cast<char *>(nullptr));
    std::perror("execl");
    _exit(127);
  }
  for (int Try = 0; Try != 250; ++Try) {
    std::ifstream In(PortFile);
    unsigned Port = 0;
    if (In >> Port && Port != 0 && Port <= 65535) {
      int Fd = connectTcp("127.0.0.1", static_cast<std::uint16_t>(Port));
      if (Fd >= 0) {
        Conn.InFd = Conn.OutFd = Fd;
        Conn.Child = Pid;
        Conn.PortFile = PortFile;
        Conn.DialTcpHost = "127.0.0.1";
        Conn.DialTcpPort = static_cast<std::uint16_t>(Port);
        return true;
      }
    }
    ::usleep(20000);
  }
  std::fprintf(stderr, "spawned TCP server never published a port at %s\n",
               PortFile.c_str());
  ::kill(Pid, SIGKILL);
  ::waitpid(Pid, nullptr, 0);
  return false;
}

/// Sends one request and reads one reply; false on transport failure.
bool roundTrip(Connection &Conn, const std::vector<std::uint8_t> &Request,
               std::vector<std::uint8_t> &Reply) {
  return proto::roundTrip(Conn.InFd, Conn.OutFd, Request, Reply);
}

void describeMismatch(const char *What,
                      const std::vector<std::uint8_t> &Got,
                      const std::vector<std::uint8_t> &Want) {
  std::size_t FirstDiff = 0;
  while (FirstDiff < Got.size() && FirstDiff < Want.size() &&
         Got[FirstDiff] == Want[FirstDiff])
    ++FirstDiff;
  std::fprintf(stderr,
               "FAIL: %s reply differs from oracle (reply %zu bytes, "
               "expected %zu, first difference at byte %zu)\n",
               What, Got.size(), Want.size(), FirstDiff);
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;
  proto::ignoreSigpipe();

  // ---- The module and its in-process oracle. The oracle is parsed from
  // the exact text shipped to the server, so both sides assign identical
  // value/block ids and start at identical CFG epochs.
  std::string Text;
  if (!Opts.InputPath.empty()) {
    Text = tool::readFileOrEmpty(Opts.InputPath);
    if (Text.empty())
      return 1;
  } else {
    Text = tool::moduleToText(tool::synthesizeModule(Opts.Generate,
                                                     Opts.Seed));
  }
  ModuleParseResult Oracle = parseModule(Text);
  if (!Oracle.Error.empty()) {
    std::fprintf(stderr, "module does not parse: %s\n",
                 Oracle.Error.c_str());
    return 1;
  }
  std::vector<const Function *> OracleFuncs;
  std::uint64_t TotalBlocks = 0, TotalValues = 0;
  for (const auto &F : Oracle.Funcs) {
    OracleFuncs.push_back(F.get());
    TotalBlocks += F->numBlocks();
    TotalValues += F->numValues();
  }
  // The oracle answers through the block-id entry points whatever plane
  // the server session runs: all planes are answer-identical by
  // construction, so every --verify byte-compare doubles as a cross-plane
  // differential (in particular of the server's cached prepared plane).
  BatchOptions OOpts;
  OOpts.Backend = Opts.Backend;
  OOpts.Plane = QueryPlane::BlockId;
  OOpts.Threads = 1;
  BatchLivenessDriver OracleDriver(OracleFuncs, OOpts);

  // ---- Transport.
  Connection Conn;
  if (!Opts.ConnectPath.empty()) {
    int Fd = connectUnix(Opts.ConnectPath);
    if (Fd < 0) {
      std::fprintf(stderr, "cannot connect to %s\n",
                   Opts.ConnectPath.c_str());
      return 1;
    }
    Conn.InFd = Conn.OutFd = Fd;
    Conn.DialUnixPath = Opts.ConnectPath;
  } else if (Opts.HasConnectTcp) {
    int Fd = connectTcp(Opts.ConnectTcpHost, Opts.ConnectTcpPort);
    if (Fd < 0) {
      std::fprintf(stderr, "cannot connect to %s:%u\n",
                   Opts.ConnectTcpHost.empty() ? "127.0.0.1"
                                               : Opts.ConnectTcpHost.c_str(),
                   Opts.ConnectTcpPort);
      return 1;
    }
    Conn.InFd = Conn.OutFd = Fd;
    Conn.DialTcpHost = Opts.ConnectTcpHost;
    Conn.DialTcpPort = Opts.ConnectTcpPort;
  } else if (Opts.TcpTransport) {
    if (!spawnTcpServer(Opts, Conn))
      return 1;
  } else if (Opts.UnixTransport) {
    if (!spawnUnixServer(Opts, Conn))
      return 1;
  } else {
    if (!spawnPipeServer(Opts, Conn))
      return 1;
  }

  int Exit = 0;
  std::vector<std::uint8_t> Reply;
  auto fail = [&](int Code) {
    Exit = Code;
    Conn.close();
    return Code;
  };

  // ---- Resume handshake. HighWater counts replies received to
  // dispatched (journaled) frames — the prefix a reconnect acknowledges
  // so the server replays but does not re-send it.
  std::uint64_t SessionId = 0;
  std::uint64_t HighWater = 0;
  auto resumedFields = [](const std::vector<std::uint8_t> &R,
                          std::uint64_t &Sid, std::uint64_t &JournalLen,
                          std::uint64_t &Pending) {
    if (R.empty() ||
        R[0] != static_cast<std::uint8_t>(proto::Opcode::Resumed))
      return false;
    proto::WireReader W(R.data() + 1, R.size() - 1);
    Sid = W.u64();
    JournalLen = W.u64();
    Pending = W.u64();
    return W.ok() && W.atEnd();
  };
  // A shed frame: the server answered Error(Overloaded) WITHOUT
  // dispatching (or journaling) it, so it must not count toward the
  // high-water mark — off-by-one there turns the next Resume(id, hwm)
  // into BadResume at best, a silently skipped reply at worst.
  auto isOverloaded = [](const std::vector<std::uint8_t> &R) {
    return R.size() >= 3 &&
           R[0] == static_cast<std::uint8_t>(proto::Opcode::Error) &&
           (static_cast<std::uint16_t>(R[1]) |
            (static_cast<std::uint16_t>(R[2]) << 8)) ==
               static_cast<std::uint16_t>(proto::ErrorCode::Overloaded);
  };
  // Dispatched-frame round trip: counts toward the high-water mark.
  // Overloaded replies are retryable by protocol contract — back off and
  // resend the frame instead of counting or surfacing them.
  auto rt = [&](const std::vector<std::uint8_t> &Request,
                std::vector<std::uint8_t> &R) {
    for (int Try = 0;; ++Try) {
      if (!roundTrip(Conn, Request, R))
        return false;
      if (!isOverloaded(R)) {
        if (Opts.Resume)
          ++HighWater;
        return true;
      }
      if (Try == 1000) {
        std::fprintf(stderr, "server still overloaded after %d retries\n",
                     Try);
        return false;
      }
      ::usleep(2000);
    }
  };
  if (Opts.Resume) {
    std::uint64_t JournalLen = 0, Pending = 0;
    if (!roundTrip(Conn, proto::encodeResume(0, 0), Reply) ||
        !resumedFields(Reply, SessionId, JournalLen, Pending) ||
        SessionId == 0) {
      std::fprintf(stderr, "resume handshake failed\n");
      return fail(1);
    }
    std::printf("ssalive-client: opened resumable session %llu\n",
                static_cast<unsigned long long>(SessionId));
  }

  // ---- Load.
  if (!rt(proto::encodeLoadModule(static_cast<std::uint8_t>(Opts.Backend),
                                  static_cast<std::uint8_t>(Opts.Plane),
                                  Text),
          Reply)) {
    std::fprintf(stderr, "transport failure during load-module\n");
    return fail(1);
  }
  {
    std::vector<std::uint8_t> Want = proto::encodeModuleLoaded(
        static_cast<std::uint32_t>(Oracle.Funcs.size()), TotalBlocks,
        TotalValues);
    if (Reply != Want) {
      describeMismatch("load-module", Reply, Want);
      return fail(2);
    }
  }
  std::printf("ssalive-client: loaded %zu functions (%llu blocks, %llu "
              "values), backend=%s, plane=%s\n",
              Oracle.Funcs.size(),
              static_cast<unsigned long long>(TotalBlocks),
              static_cast<unsigned long long>(TotalValues),
              batchBackendName(Opts.Backend), queryPlaneName(Opts.Plane));

  // ---- Query/edit runs.
  RandomEngine EditRng(Opts.Seed * 31 + 7);
  CFGMutatorOptions MOpts;
  MOpts.MaxNodes = 4096;
  std::uint64_t TotalQueries = 0;
  for (unsigned Run = 0; Run != Opts.Repeat; ++Run) {
    std::vector<BatchQuery> Workload = BatchLivenessDriver::generateWorkload(
        OracleFuncs, Opts.Seed + Run, Opts.Queries);
    if (Workload.empty()) {
      std::fprintf(stderr, "no queryable values in the module\n");
      return fail(1);
    }
    double Millis = 0;
    for (std::size_t Begin = 0; Begin < Workload.size();
         Begin += Opts.Batch) {
      std::size_t End = std::min(Workload.size(), Begin + Opts.Batch);
      std::vector<proto::QueryItem> Items;
      Items.reserve(End - Begin);
      for (std::size_t I = Begin; I != End; ++I)
        Items.push_back({Workload[I].FuncIndex, Workload[I].ValueId,
                         Workload[I].BlockId, Workload[I].IsLiveOut});
      auto Request = proto::encodeQueryBatch(Items);
      auto T0 = std::chrono::steady_clock::now();
      if (!rt(Request, Reply)) {
        std::fprintf(stderr, "transport failure during query batch\n");
        return fail(1);
      }
      Millis += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
      TotalQueries += End - Begin;
      if (Opts.Verify) {
        std::vector<BatchQuery> Chunk(Workload.begin() + Begin,
                                      Workload.begin() + End);
        std::vector<std::uint8_t> Want =
            proto::encodeAnswers(OracleDriver.run(Chunk).Answers);
        if (Reply != Want) {
          describeMismatch("query-batch", Reply, Want);
          std::fprintf(stderr, "  replay: --seed=%llu run %u batch at %zu\n",
                       static_cast<unsigned long long>(Opts.Seed), Run,
                       Begin);
          return fail(2);
        }
      }
    }
    std::printf("  run %u%s: %zu queries in %.2f ms (%.0f q/s)%s\n", Run + 1,
                Run == 0 ? " (cold)" : " (warm)", Workload.size(), Millis,
                Millis > 0 ? double(Workload.size()) / (Millis / 1e3) : 0,
                Opts.Verify ? ", replies oracle-identical" : "");

    // CFG edits between runs: chosen on the oracle copy, shipped as
    // deterministic replays, consumed by the server's refresh plane.
    if (Opts.Edits != 0 && Run + 1 != Opts.Repeat) {
      std::vector<proto::EditItem> Items;
      std::vector<std::pair<std::uint8_t, std::uint64_t>> Expect;
      for (unsigned E = 0; E != Opts.Edits; ++E) {
        unsigned FI = EditRng.nextBelow(
            static_cast<unsigned>(Oracle.Funcs.size()));
        Function &F = *Oracle.Funcs[FI];
        auto M = mutateFunctionCFG(F, EditRng, MOpts);
        if (!M)
          continue;
        if (batchBackendUsesLiveCheck(Opts.Backend))
          OracleDriver.analysisManager().refresh(F);
        Items.push_back({static_cast<std::uint8_t>(M->Kind), FI, M->From,
                         M->To, M->To2});
        Expect.emplace_back(1, F.cfgVersion());
      }
      OracleDriver.notifyCFGEdited();
      if (!Items.empty()) {
        if (!rt(proto::encodeEditBatch(Items), Reply)) {
          std::fprintf(stderr, "transport failure during edit batch\n");
          return fail(1);
        }
        std::vector<std::uint8_t> Want = proto::encodeEditApplied(Expect);
        if (Opts.Verify && Reply != Want) {
          describeMismatch("edit-cfg", Reply, Want);
          return fail(2);
        }
        std::printf("  applied %zu CFG edits through the server's refresh "
                    "plane\n",
                    Items.size());
      }
    }

    // Drop the connection mid-session and re-attach: the server parks
    // the journal on EOF and replays it against a fresh Session on
    // Resume. Every reply so far was received, so the handshake must
    // report journalLen == HighWater and nothing pending — the next run
    // then continues on the rebuilt session, and --verify keeps
    // byte-comparing its replies against the uninterrupted oracle.
    if (Opts.Resume && Run + 1 != Opts.Repeat) {
      Conn.dropStream();
      bool Dialed = false;
      for (int Try = 0; Try != 250 && !(Dialed = Conn.redial()); ++Try)
        ::usleep(20000);
      if (!Dialed) {
        std::fprintf(stderr, "could not reconnect for resume\n");
        return fail(1);
      }
      // The old handler may still be noticing the EOF; until it parks
      // the journal, Resume answers Error(UnknownSession) — retry.
      std::uint64_t Sid = 0, JournalLen = 0, Pending = 0;
      bool Resumed = false;
      for (int Try = 0; Try != 250 && !Resumed; ++Try) {
        if (!roundTrip(Conn, proto::encodeResume(SessionId, HighWater),
                       Reply)) {
          std::fprintf(stderr, "transport failure during resume\n");
          return fail(1);
        }
        Resumed = resumedFields(Reply, Sid, JournalLen, Pending);
        if (!Resumed)
          ::usleep(20000);
      }
      if (!Resumed || Sid != SessionId) {
        std::fprintf(stderr, "resume re-attach failed for session %llu\n",
                     static_cast<unsigned long long>(SessionId));
        return fail(1);
      }
      if (JournalLen != HighWater || Pending != 0) {
        std::fprintf(stderr,
                     "FAIL: resume reports journal=%llu pending=%llu, "
                     "client acknowledged %llu replies\n",
                     static_cast<unsigned long long>(JournalLen),
                     static_cast<unsigned long long>(Pending),
                     static_cast<unsigned long long>(HighWater));
        return fail(2);
      }
      std::printf("  dropped and resumed session %llu at high-water mark "
                  "%llu\n",
                  static_cast<unsigned long long>(SessionId),
                  static_cast<unsigned long long>(HighWater));
    }
  }

  // ---- Stats + shutdown (shutdown only when we own the server).
  if (rt(proto::encodeStats(), Reply) && !Reply.empty() &&
      Reply[0] == static_cast<std::uint8_t>(proto::Opcode::StatsReply)) {
    proto::WireReader R(Reply.data() + 1, Reply.size() - 1);
    std::uint64_t Served = R.u64();
    std::uint64_t Positives = R.u64();
    std::uint64_t Applied = R.u64();
    std::printf("  server: %llu queries (%llu live), %llu edits applied\n",
                static_cast<unsigned long long>(Served),
                static_cast<unsigned long long>(Positives),
                static_cast<unsigned long long>(Applied));
    if (Served != TotalQueries) {
      std::fprintf(stderr, "FAIL: server counted %llu queries, client sent "
                           "%llu\n",
                   static_cast<unsigned long long>(Served),
                   static_cast<unsigned long long>(TotalQueries));
      return fail(2);
    }
  }
  // ---- Metrics: the process-wide telemetry registry over the wire.
  if (Opts.Metrics) {
    if (!rt(proto::encodeMetricsRequest(), Reply) ||
        Reply.empty() ||
        Reply[0] != static_cast<std::uint8_t>(proto::Opcode::MetricsReply)) {
      std::fprintf(stderr, "FAIL: no MetricsReply to the Metrics request\n");
      return fail(2);
    }
    proto::WireReader R(Reply.data() + 1, Reply.size() - 1);
    std::vector<telemetry::Metric> Metrics;
    if (!proto::decodeMetrics(R, Metrics)) {
      std::fprintf(stderr, "FAIL: MetricsReply body does not decode\n");
      return fail(2);
    }
    std::printf("  metrics: %zu series from the server registry\n",
                Metrics.size());
    for (const telemetry::Metric &M : Metrics) {
      if (M.Kind == telemetry::MetricKind::Histogram) {
        std::printf(
            "    %-44s count=%llu p50=%lluns p99=%lluns\n", M.Name.c_str(),
            static_cast<unsigned long long>(M.Hist.Count),
            static_cast<unsigned long long>(
                telemetry::histogramPercentile(M.Hist, 50)),
            static_cast<unsigned long long>(
                telemetry::histogramPercentile(M.Hist, 99)));
      } else {
        std::printf("    %-44s %llu%s\n", M.Name.c_str(),
                    static_cast<unsigned long long>(M.Value),
                    M.Kind == telemetry::MetricKind::Gauge ? " (gauge)" : "");
      }
    }
    if (!Opts.MetricsOutPath.empty()) {
      std::ofstream Out(Opts.MetricsOutPath, std::ios::trunc);
      if (!Out) {
        std::fprintf(stderr, "cannot write %s\n",
                     Opts.MetricsOutPath.c_str());
        return fail(1);
      }
      Out << telemetry::toPrometheusText(Metrics);
      std::printf("  metrics: Prometheus dump written to %s\n",
                  Opts.MetricsOutPath.c_str());
    }
  }

  if (Conn.Child > 0)
    (void)rt(proto::encodeShutdown(), Reply);
  Conn.close();
  return Exit;
}
