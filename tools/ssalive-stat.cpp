//===- tools/ssalive-stat.cpp - Telemetry snapshot CLI --------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// One-shot observability probe for a running ssalive-server: connects,
// sends a single Metrics request, and renders the process-wide registry —
// counters, gauges, and latency histograms with p50/p95/p99 — without
// loading a module or perturbing any session state. A frame-latency
// summary line derives the server's request-service percentiles from the
// ssalive_server_frame_ns log2 histogram.
//
//   ssalive-stat --connect=/path/sock      human-readable summary
//   ssalive-stat --connect=/path/sock --prometheus
//                                          Prometheus text exposition
//                                          (pipe into tools/check-metrics)
//   ssalive-stat --connect=/path/sock --watch=SECONDS
//                                          re-poll and print q/s deltas
//
// Exit status: 0 = success, 1 = usage/transport failure, 2 = the server's
// reply was not a decodable MetricsReply.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "support/Telemetry.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ssalive;
namespace proto = ssalive::protocol;

namespace {

struct CliOptions {
  std::string ConnectPath;
  bool Prometheus = false;
  unsigned WatchSecs = 0;
};

bool parseUnsigned(const char *S, std::uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End && *End == '\0' && End != S;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    std::uint64_t N = 0;
    if (Arg.rfind("--connect=", 0) == 0) {
      Opts.ConnectPath = Arg.substr(10);
    } else if (Arg == "--prometheus") {
      Opts.Prometheus = true;
    } else if (Arg.rfind("--watch=", 0) == 0 &&
               parseUnsigned(Arg.c_str() + 8, N) && N != 0) {
      Opts.WatchSecs = static_cast<unsigned>(N);
    } else {
      std::fprintf(stderr, "unrecognized argument '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (Opts.ConnectPath.empty()) {
    std::fprintf(stderr, "--connect=PATH is required\n");
    return false;
  }
  return true;
}

int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Fetches one registry snapshot over \p Fd; 0/1/2 per the exit contract.
int fetchMetrics(int Fd, std::vector<telemetry::Metric> &Out) {
  std::vector<std::uint8_t> Reply;
  if (!proto::roundTrip(Fd, Fd, proto::encodeMetricsRequest(), Reply)) {
    std::fprintf(stderr, "transport failure during Metrics request\n");
    return 1;
  }
  if (Reply.empty() ||
      Reply[0] != static_cast<std::uint8_t>(proto::Opcode::MetricsReply)) {
    std::fprintf(stderr, "reply is not a MetricsReply (opcode 0x%02x)\n",
                 Reply.empty() ? 0 : Reply[0]);
    return 2;
  }
  proto::WireReader R(Reply.data() + 1, Reply.size() - 1);
  if (!proto::decodeMetrics(R, Out)) {
    std::fprintf(stderr, "MetricsReply body does not decode\n");
    return 2;
  }
  return 0;
}

void printHuman(const std::vector<telemetry::Metric> &Metrics) {
  std::printf("%zu series\n", Metrics.size());
  for (const telemetry::Metric &M : Metrics) {
    switch (M.Kind) {
    case telemetry::MetricKind::Counter:
      std::printf("  %-46s %llu\n", M.Name.c_str(),
                  static_cast<unsigned long long>(M.Value));
      break;
    case telemetry::MetricKind::Gauge:
      std::printf("  %-46s %lld (gauge)\n", M.Name.c_str(),
                  static_cast<long long>(M.Value));
      break;
    case telemetry::MetricKind::Histogram:
      std::printf("  %-46s count=%llu avg=%lluns p50=%llu p95=%llu "
                  "p99=%llu\n",
                  M.Name.c_str(),
                  static_cast<unsigned long long>(M.Hist.Count),
                  static_cast<unsigned long long>(
                      M.Hist.Count ? M.Hist.Sum / M.Hist.Count : 0),
                  static_cast<unsigned long long>(
                      telemetry::histogramPercentile(M.Hist, 50)),
                  static_cast<unsigned long long>(
                      telemetry::histogramPercentile(M.Hist, 95)),
                  static_cast<unsigned long long>(
                      telemetry::histogramPercentile(M.Hist, 99)));
      break;
    }
  }
}

/// Frame-latency summary: the service-time percentiles of the server's
/// request loop, derived from the ssalive_server_frame_ns log2 histogram —
/// the one number an operator checks first under load.
void printFrameLatencySummary(const std::vector<telemetry::Metric> &Metrics) {
  for (const telemetry::Metric &M : Metrics) {
    if (M.Name != "ssalive_server_frame_ns" ||
        M.Kind != telemetry::MetricKind::Histogram)
      continue;
    if (M.Hist.Count == 0) {
      std::printf("frame latency: no frames observed yet\n");
      return;
    }
    double AvgUs = double(M.Hist.Sum) / double(M.Hist.Count) / 1e3;
    std::printf("frame latency: %llu frame(s), avg=%.1fus p50=%.1fus "
                "p95=%.1fus p99=%.1fus\n",
                static_cast<unsigned long long>(M.Hist.Count), AvgUs,
                telemetry::histogramPercentile(M.Hist, 50) / 1e3,
                telemetry::histogramPercentile(M.Hist, 95) / 1e3,
                telemetry::histogramPercentile(M.Hist, 99) / 1e3);
    return;
  }
}

std::uint64_t valueOf(const std::vector<telemetry::Metric> &Metrics,
                      const char *Name) {
  for (const telemetry::Metric &M : Metrics)
    if (M.Name == Name)
      return M.Value;
  return 0;
}

/// The router summary: shard count, per-shard live sessions, and the
/// routed/migrated/shed totals — the at-a-glance view of how the
/// consistent-hash placement is spreading load.
void printRouterSummary(const std::vector<telemetry::Metric> &Metrics) {
  std::uint64_t Shards = valueOf(Metrics, "ssalive_router_shards");
  if (Shards == 0)
    return; // Pre-router server; nothing to summarize.
  std::printf("router: %llu shard(s), %llu session(s) routed, "
              "%llu migration(s), %llu shed\n",
              static_cast<unsigned long long>(Shards),
              static_cast<unsigned long long>(
                  valueOf(Metrics, "ssalive_router_sessions_routed_total")),
              static_cast<unsigned long long>(
                  valueOf(Metrics, "ssalive_router_migrations_total")),
              static_cast<unsigned long long>(
                  valueOf(Metrics, "ssalive_router_sheds_total")));
  for (std::uint64_t I = 0; I != Shards; ++I) {
    std::string Name =
        "ssalive_router_shard" + std::to_string(I) + "_sessions";
    std::printf("  shard %llu: %lld live session(s)\n",
                static_cast<unsigned long long>(I),
                static_cast<long long>(valueOf(Metrics, Name.c_str())));
  }
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return 1;
  proto::ignoreSigpipe();

  int Fd = connectUnix(Opts.ConnectPath);
  if (Fd < 0) {
    std::fprintf(stderr, "cannot connect to %s\n", Opts.ConnectPath.c_str());
    return 1;
  }

  std::vector<telemetry::Metric> Metrics;
  int Rc = fetchMetrics(Fd, Metrics);
  if (Rc != 0) {
    ::close(Fd);
    return Rc;
  }

  if (Opts.Prometheus) {
    std::fputs(telemetry::toPrometheusText(Metrics).c_str(), stdout);
    ::close(Fd);
    return 0;
  }

  printHuman(Metrics);
  printFrameLatencySummary(Metrics);
  printRouterSummary(Metrics);

  // --watch: repoll on the same connection and report the query rate the
  // registry observed between snapshots.
  while (Opts.WatchSecs != 0) {
    std::uint64_t Before = valueOf(Metrics, "ssalive_server_queries_total");
    ::sleep(Opts.WatchSecs);
    Metrics.clear();
    Rc = fetchMetrics(Fd, Metrics);
    if (Rc != 0) {
      ::close(Fd);
      return Rc;
    }
    std::uint64_t After = valueOf(Metrics, "ssalive_server_queries_total");
    std::printf("-- %llu queries_total (+%llu, %.0f q/s)\n",
                static_cast<unsigned long long>(After),
                static_cast<unsigned long long>(After - Before),
                double(After - Before) / Opts.WatchSecs);
  }

  ::close(Fd);
  return 0;
}
