//===- tools/ToolUtil.h - Shared CLI helpers --------------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the command-line front ends (ssalive-batch,
/// ssalive-client): SPEC-profile module synthesis, module file loading,
/// and rendering a module back to the textual form the server's
/// load-module command ships over the wire.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_TOOLS_TOOLUTIL_H
#define SSALIVE_TOOLS_TOOLUTIL_H

#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "ssa/SSAConstruction.h"
#include "support/RandomEngine.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"
#include "workload/SpecProfile.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ssalive::tool {

/// Synthesizes \p Count strict-SSA functions with SPEC-profile shapes
/// (176.gcc row: the densest corpus). Deterministic in \p Seed.
inline std::vector<std::unique_ptr<Function>>
synthesizeModule(unsigned Count, std::uint64_t Seed) {
  std::vector<std::unique_ptr<Function>> Module;
  RandomEngine Rng(Seed ^ 0x5ca1ab1eull);
  const SpecProfile &P = spec2000Profiles()[2];
  Module.reserve(Count);
  for (unsigned I = 0; I != Count; ++I) {
    CFGGenOptions GOpts;
    GOpts.TargetBlocks = sampleBlockCount(P, Rng);
    CFG G = generateCFG(GOpts, Rng);
    ProgramGenOptions POpts;
    auto F = generateProgram(G, POpts, Rng);
    constructSSA(*F);
    Module.push_back(std::move(F));
  }
  return Module;
}

/// Reads a whole file; empty string + stderr message on failure.
inline std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "cannot open '%s'\n", Path.c_str());
    return {};
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Renders a module as the textual form parseModule reads back — the
/// payload of the server's load-module command.
inline std::string
moduleToText(const std::vector<std::unique_ptr<Function>> &Module) {
  std::string Text;
  for (const auto &F : Module) {
    Text += printFunction(*F);
    Text += "\n";
  }
  return Text;
}

} // namespace ssalive::tool

#endif // SSALIVE_TOOLS_TOOLUTIL_H
