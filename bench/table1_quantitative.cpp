//===- bench/table1_quantitative.cpp - Reproduce Table 1 ------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduction of Table 1 ("Results of Quantitative Evaluation") and the
// surrounding Section 6.1 prose statistics. The synthesized corpus is
// measured with the same statistics the paper reports; each measured row
// is printed next to the paper's row so the calibration is auditable.
//
// Usage: table1_quantitative [--scale=<percent>]
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "analysis/Reducibility.h"
#include "ir/CFG.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

struct CorpusStats {
  SampleStats BlocksPerProc;
  SampleStats UsesPerVariable;
  std::uint64_t Edges = 0;
  std::uint64_t BackEdges = 0;
  std::uint64_t IrreducibleEdges = 0;
  unsigned IrreducibleFuncs = 0;
  unsigned ProcsUnder512 = 0;
};

CorpusStats measureBenchmark(const SpecProfile &P, unsigned Scale) {
  CorpusStats S;
  RandomEngine Rng(0xABCD1234ull + P.SumBlocks);
  unsigned Procs = scaledProcedures(P, Scale);
  for (unsigned I = 0; I != Procs; ++I) {
    auto F = synthesizeProcedure(P, Rng);
    S.BlocksPerProc.add(F->numBlocks());
    if (F->numBlocks() < 512)
      ++S.ProcsUnder512;
    for (const auto &V : F->values()) {
      if (V->defs().empty())
        continue;
      S.UsesPerVariable.add(V->numUses());
    }
    CFG G = CFG::fromFunction(*F);
    DFS D(G);
    DomTree DT(G, D);
    ReducibilityInfo Info = analyzeReducibility(D, DT);
    S.Edges += G.numEdges();
    S.BackEdges += Info.numBackEdges;
    S.IrreducibleEdges += Info.IrreducibleEdges.size();
    if (!Info.Reducible)
      ++S.IrreducibleFuncs;
  }
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = parseScalePercent(Argc, Argv);
  std::printf("Table 1: Results of Quantitative Evaluation\n");
  std::printf("(synthetic SPEC2000int stand-in corpus at %u%% scale; each "
              "benchmark shows the\n paper row first, then the measured "
              "row)\n\n",
              Scale);

  TablePrinter T({"Benchmark", "", "AvgBlk", "SumBlk", "%<=32", "%<=64",
                  "MaxUse", "%u<=1", "%u<=2", "%u<=3", "%u<=4"});

  CorpusStats Total;
  unsigned TotalProcs = 0;
  for (const SpecProfile &P : spec2000Profiles()) {
    CorpusStats S = measureBenchmark(P, Scale);
    T.addRow({P.Name, "paper", TablePrinter::fmt(P.AvgBlocks),
              std::to_string(P.SumBlocks), TablePrinter::fmt(P.PctBlocksLe32),
              TablePrinter::fmt(P.PctBlocksLe64), std::to_string(P.MaxUses),
              TablePrinter::fmt(P.PctUsesLe1), TablePrinter::fmt(P.PctUsesLe2),
              TablePrinter::fmt(P.PctUsesLe3),
              TablePrinter::fmt(P.PctUsesLe4)});
    T.addRow({"", "ours", TablePrinter::fmt(S.BlocksPerProc.average()),
              std::to_string(S.BlocksPerProc.sum()),
              TablePrinter::fmt(S.BlocksPerProc.percentAtMost(32)),
              TablePrinter::fmt(S.BlocksPerProc.percentAtMost(64)),
              std::to_string(S.UsesPerVariable.maximum()),
              TablePrinter::fmt(S.UsesPerVariable.percentAtMost(1)),
              TablePrinter::fmt(S.UsesPerVariable.percentAtMost(2)),
              TablePrinter::fmt(S.UsesPerVariable.percentAtMost(3)),
              TablePrinter::fmt(S.UsesPerVariable.percentAtMost(4))});

    TotalProcs += S.BlocksPerProc.sampleCount();
    for (unsigned B : S.BlocksPerProc.samples())
      Total.BlocksPerProc.add(B);
    for (unsigned U : S.UsesPerVariable.samples())
      Total.UsesPerVariable.add(U);
    Total.Edges += S.Edges;
    Total.BackEdges += S.BackEdges;
    Total.IrreducibleEdges += S.IrreducibleEdges;
    Total.IrreducibleFuncs += S.IrreducibleFuncs;
    Total.ProcsUnder512 += S.ProcsUnder512;
  }

  const SpecProfile &PT = spec2000TotalRow();
  T.addRow({"Total", "paper", TablePrinter::fmt(PT.AvgBlocks),
            std::to_string(PT.SumBlocks), TablePrinter::fmt(PT.PctBlocksLe32),
            TablePrinter::fmt(PT.PctBlocksLe64), std::to_string(PT.MaxUses),
            TablePrinter::fmt(PT.PctUsesLe1), TablePrinter::fmt(PT.PctUsesLe2),
            TablePrinter::fmt(PT.PctUsesLe3),
            TablePrinter::fmt(PT.PctUsesLe4)});
  T.addRow({"", "ours", TablePrinter::fmt(Total.BlocksPerProc.average()),
            std::to_string(Total.BlocksPerProc.sum()),
            TablePrinter::fmt(Total.BlocksPerProc.percentAtMost(32)),
            TablePrinter::fmt(Total.BlocksPerProc.percentAtMost(64)),
            std::to_string(Total.UsesPerVariable.maximum()),
            TablePrinter::fmt(Total.UsesPerVariable.percentAtMost(1)),
            TablePrinter::fmt(Total.UsesPerVariable.percentAtMost(2)),
            TablePrinter::fmt(Total.UsesPerVariable.percentAtMost(3)),
            TablePrinter::fmt(Total.UsesPerVariable.percentAtMost(4))});
  T.print();

  // Section 6.1 prose statistics.
  std::printf("\nSection 6.1 corpus statistics (paper vs ours):\n");
  std::printf("  procedures compiled:       paper 4823      ours %u\n",
              TotalProcs);
  std::printf("  edges per basic block:     paper 1.30 avg  ours %.2f\n",
              static_cast<double>(Total.Edges) / Total.BlocksPerProc.sum());
  std::printf("  total edges:               paper 238427    ours %llu\n",
              static_cast<unsigned long long>(Total.Edges));
  std::printf("  back edges:                paper 8701 "
              "(3.6%%)  ours %llu (%.1f%%)\n",
              static_cast<unsigned long long>(Total.BackEdges),
              100.0 * Total.BackEdges / Total.Edges);
  std::printf("  irreducible edges:         paper 60        ours %llu\n",
              static_cast<unsigned long long>(Total.IrreducibleEdges));
  std::printf("  irreducible functions:     paper 7         ours %u\n",
              Total.IrreducibleFuncs);
  std::printf("  procedures < 512 blocks:   paper 99.58%%    ours %.2f%%\n",
              100.0 * Total.ProcsUnder512 / TotalProcs);
  return 0;
}
