//===- bench/table2_runtime.cpp - Reproduce Table 2 -----------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduction of Table 2 ("Results of the Runtime Experiments"): for each
// benchmark profile, synthesize the corpus, and per procedure measure
//
//   * Native precomputation — solving the iterative data-flow liveness the
//     LAO way (φ-related universe, sparse sets locally, sorted arrays
//     globally);
//   * New precomputation — computing the R and T bitsets (the DFS and
//     dominator tree are prerequisites the paper assumes present);
//   * Query time — the exact liveness query trace of the Sreedhar-III SSA
//     destruction pass, replayed against both backends (binary search per
//     query for Native; Algorithm 3 for New).
//
// Cycle counts come from the time stamp counter, as in the paper. Absolute
// numbers differ from a 2007 Pentium M; the reproduction targets are the
// speedup columns. Each benchmark prints the paper row and the measured
// row side by side.
//
// Note: since the prepared-cache migration, FunctionLiveness answers
// through one cached PreparedVar per value (core/PreparedCache) — the
// "New" query column therefore measures today's production flow, whose
// per-value chain walk is amortized across the trace, not the paper's
// walk-per-query cost. bench_prepared isolates cached vs per-query
// preparation explicitly.
//
// Usage: table2_runtime [--scale=<percent>]
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/FunctionLiveness.h"
#include "core/LiveCheck.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "liveness/DataflowLiveness.h"
#include "ssa/SSADestruction.h"
#include "support/CycleTimer.h"

#include <cstdio>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

struct BenchResult {
  unsigned Procs = 0;
  std::uint64_t NativePreCycles = 0;
  std::uint64_t NewPreCycles = 0;
  std::uint64_t NewPreFullCycles = 0; ///< Including DFS + dominator tree.
  std::uint64_t Queries = 0;
  std::uint64_t NativeQueryCycles = 0;
  std::uint64_t NewQueryCycles = 0;
  unsigned Checksum = 0; ///< Defeats dead-code elimination of the replay.
};

/// Replays a recorded query stream against \p Backend.
unsigned replay(const Function &F, const std::vector<RecordedQuery> &Trace,
                LivenessQueries &Backend, CycleTimer &Timer) {
  unsigned Checksum = 0;
  Timer.start();
  for (const RecordedQuery &Q : Trace) {
    const Value &V = *F.value(Q.ValueId);
    const BasicBlock &B = *F.block(Q.BlockId);
    bool Answer =
        Q.IsLiveOut ? Backend.isLiveOut(V, B) : Backend.isLiveIn(V, B);
    Checksum = (Checksum << 1) ^ static_cast<unsigned>(Answer) ^
               (Checksum >> 17);
  }
  Timer.stop();
  return Checksum;
}

BenchResult runBenchmark(const SpecProfile &P, unsigned Scale) {
  BenchResult R;
  RandomEngine Rng(0x5EC2000ull + P.SumBlocks);
  R.Procs = scaledProcedures(P, Scale);

  for (unsigned I = 0; I != R.Procs; ++I) {
    auto F = synthesizeProcedure(P, Rng);

    // The CFG view, DFS and dominator tree exist in the compiler either
    // way (the paper lists them as prerequisites); both precomputation
    // columns therefore time only their own work on top of them.
    CFG G = CFG::fromFunction(*F);
    DFS D(G);
    DomTree DT(G, D);

    // --- Native precomputation: the data-flow solve.
    CycleTimer NativePre;
    NativePre.start();
    DataflowOptions NOpts;
    NOpts.PhiRelatedOnly = true;
    DataflowLiveness Native(*F, G, D, NOpts);
    NativePre.stop();
    R.NativePreCycles += NativePre.totalCycles();

    // --- New precomputation: the R/T bitsets.
    CycleTimer NewPreFull, NewPre;
    NewPreFull.start();
    CFG G2 = CFG::fromFunction(*F);
    DFS D2(G2);
    DomTree DT2(G2, D2);
    NewPre.start();
    LiveCheck Engine(G2, D2, DT2);
    NewPre.stop();
    NewPreFull.stop();
    R.NewPreCycles += NewPre.totalCycles();
    R.NewPreFullCycles += NewPreFull.totalCycles();
    (void)DT;

    // --- Query workload: run SSA destruction on a clone (the pass edits
    // the IR) and record its liveness queries against the pristine F.
    auto Clone = cloneFunction(*F);
    FunctionLiveness CloneLive(*Clone);
    DestructionOptions DOpts;
    DOpts.RecordTrace = true;
    DestructionStats Stats = destructSSA(*Clone, CloneLive, DOpts);
    R.Queries += Stats.Trace.size();

    // Replay against both backends on the original function.
    FunctionLiveness NewBackend(*F);
    CycleTimer NativeQ, NewQ;
    R.Checksum ^= replay(*F, Stats.Trace, Native, NativeQ);
    R.Checksum ^= replay(*F, Stats.Trace, NewBackend, NewQ);
    R.NativeQueryCycles += NativeQ.totalCycles();
    R.NewQueryCycles += NewQ.totalCycles();
  }
  return R;
}

double safeDiv(double A, double B) { return B == 0 ? 0 : A / B; }

} // namespace

int main(int Argc, char **Argv) {
  unsigned Scale = parseScalePercent(Argc, Argv);
  std::printf("Table 2: Results of the Runtime Experiments\n");
  std::printf("(synthetic corpus at %u%% scale; cycles from the TSC; per "
              "benchmark: paper row,\n then measured row. 'Native' = LAO-"
              "style data-flow, 'New' = this library)\n\n",
              Scale);

  TablePrinter T({"Benchmark", "", "#Proc", "Pre.Native", "Pre.New", "Spdup",
                  "#Queries", "Q.Native", "Q.New", "Spdup", "Both"});

  double TotNativePre = 0, TotNewPre = 0, TotNativeQ = 0, TotNewQ = 0;
  double TotNewPreFull = 0;
  std::uint64_t TotProcs = 0, TotQueries = 0;
  unsigned Checksum = 0;

  for (const SpecProfile &P : spec2000Profiles()) {
    BenchResult R = runBenchmark(P, Scale);
    double PreNative = safeDiv(double(R.NativePreCycles), R.Procs);
    double PreNew = safeDiv(double(R.NewPreCycles), R.Procs);
    double QNative = safeDiv(double(R.NativeQueryCycles), double(R.Queries));
    double QNew = safeDiv(double(R.NewQueryCycles), double(R.Queries));
    double Both = safeDiv(R.Procs * PreNative + double(R.Queries) * QNative,
                          R.Procs * PreNew + double(R.Queries) * QNew);

    T.addRow({P.Name, "paper", std::to_string(P.Procedures),
              TablePrinter::fmt(P.PaperPrecompNative),
              TablePrinter::fmt(P.PaperPrecompNew),
              TablePrinter::fmt(P.PaperPrecompSpdup),
              std::to_string(P.PaperQueries),
              TablePrinter::fmt(P.PaperQueryNative),
              TablePrinter::fmt(P.PaperQueryNew),
              TablePrinter::fmt(P.PaperQuerySpdup),
              TablePrinter::fmt(P.PaperBothSpdup)});
    T.addRow({"", "ours", std::to_string(R.Procs),
              TablePrinter::fmt(PreNative), TablePrinter::fmt(PreNew),
              TablePrinter::fmt(safeDiv(PreNative, PreNew)),
              std::to_string(R.Queries), TablePrinter::fmt(QNative),
              TablePrinter::fmt(QNew), TablePrinter::fmt(safeDiv(QNative,
                                                                 QNew)),
              TablePrinter::fmt(Both)});

    TotNativePre += R.NativePreCycles;
    TotNewPre += R.NewPreCycles;
    TotNewPreFull += R.NewPreFullCycles;
    TotNativeQ += R.NativeQueryCycles;
    TotNewQ += R.NewQueryCycles;
    TotProcs += R.Procs;
    TotQueries += R.Queries;
    Checksum ^= R.Checksum;
  }

  const SpecProfile &PT = spec2000TotalRow();
  double PreNative = safeDiv(TotNativePre, double(TotProcs));
  double PreNew = safeDiv(TotNewPre, double(TotProcs));
  double QNative = safeDiv(TotNativeQ, double(TotQueries));
  double QNew = safeDiv(TotNewQ, double(TotQueries));
  double Both = safeDiv(double(TotProcs) * PreNative +
                            double(TotQueries) * QNative,
                        double(TotProcs) * PreNew +
                            double(TotQueries) * QNew);
  T.addRow({"Total", "paper", std::to_string(PT.Procedures),
            TablePrinter::fmt(PT.PaperPrecompNative),
            TablePrinter::fmt(PT.PaperPrecompNew),
            TablePrinter::fmt(PT.PaperPrecompSpdup),
            std::to_string(PT.PaperQueries),
            TablePrinter::fmt(PT.PaperQueryNative),
            TablePrinter::fmt(PT.PaperQueryNew),
            TablePrinter::fmt(PT.PaperQuerySpdup),
            TablePrinter::fmt(PT.PaperBothSpdup)});
  T.addRow({"", "ours", std::to_string(TotProcs), TablePrinter::fmt(PreNative),
            TablePrinter::fmt(PreNew),
            TablePrinter::fmt(safeDiv(PreNative, PreNew)),
            std::to_string(TotQueries), TablePrinter::fmt(QNative),
            TablePrinter::fmt(QNew), TablePrinter::fmt(safeDiv(QNative, QNew)),
            TablePrinter::fmt(Both)});
  T.print();
  std::printf("\n(replay checksum %u)\n", Checksum);
  std::printf("\nConservative accounting: charging the New side for CFG "
              "view + DFS + dominator\ntree as well gives %.2f cycles/proc "
              "(precompute speedup %.2fx instead of %.2fx).\n",
              TotNewPreFull / double(TotProcs),
              safeDiv(PreNative, TotNewPreFull / double(TotProcs)),
              safeDiv(PreNative, PreNew));

  // --- Section 6.2 prose: the unrestricted data-flow precomputation.
  std::printf("\nSection 6.2 full-universe comparison (paper vs ours):\n");
  RandomEngine Rng(0xFEED5EC2ull);
  const SpecProfile &Gcc = spec2000Profiles()[2]; // Representative profile.
  std::uint64_t FullPre = 0, PhiPre = 0, NewPre = 0;
  double PhiFill = 0, FullFill = 0;
  unsigned Samples = 200;
  for (unsigned I = 0; I != Samples; ++I) {
    auto F = synthesizeProcedure(Gcc, Rng);
    CycleTimer TFull, TPhi, TNew;
    TFull.start();
    DataflowLiveness Full(*F);
    TFull.stop();
    DataflowOptions NOpts;
    NOpts.PhiRelatedOnly = true;
    TPhi.start();
    DataflowLiveness Phi(*F, NOpts);
    TPhi.stop();
    TNew.start();
    FunctionLiveness New(*F);
    TNew.stop();
    FullPre += TFull.totalCycles();
    PhiPre += TPhi.totalCycles();
    NewPre += TNew.totalCycles();
    PhiFill += Phi.averageLiveInFill();
    FullFill += Full.averageLiveInFill();
  }
  std::printf("  avg live-in fill, phi-universe:  paper 3.16   ours %.2f\n",
              PhiFill / Samples);
  std::printf("  avg live-in fill, full universe: paper 18.52  ours %.2f\n",
              FullFill / Samples);
  std::printf("  full dataflow vs phi dataflow:   paper 1.60x  ours %.2fx\n",
              safeDiv(double(FullPre), double(PhiPre)));
  std::printf("  full dataflow vs New precompute: paper 4.70x  ours %.2fx\n",
              safeDiv(double(FullPre), double(NewPre)));
  return 0;
}
