//===- bench/bench_scaling.cpp - Quadratic-cost scaling sweep -------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation C (DESIGN.md): the quadratic behaviour the paper discusses in
// Sections 6.1 and 8. Sweeps the block count and reports, per size:
// precomputation cycles for both approaches, R/T memory versus the
// sorted-array native memory, and the memory break-even the paper derives
// ("our method needs less storage if the procedure has less than
// 32 x 32 = 1024 blocks" for 32-variable ordered arrays).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/LiveCheck.h"
#include "ir/CFG.h"
#include "liveness/DataflowLiveness.h"
#include "ssa/SSAConstruction.h"
#include "support/CycleTimer.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>

using namespace ssalive;
using namespace ssalive::bench;

int main() {
  std::printf("Scaling sweep: precomputation cost and memory vs block "
              "count\n");
  std::printf("(per size: average over several random procedures; 'New' "
              "memory is the R+T\n bitsets, 'Native' memory the sorted "
              "live-in/live-out arrays)\n\n");

  TablePrinter T({"Blocks", "Vars", "Pre.Native(cyc)", "Pre.New(cyc)",
                  "Ratio", "Mem.Native(KB)", "Mem.New(KB)", "Mem ratio"});
  std::vector<JsonRecord> Records;

  for (unsigned Blocks : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                          2048u}) {
    unsigned Reps = Blocks >= 512 ? 3 : 10;
    std::uint64_t NativeCycles = 0, NewCycles = 0;
    double NativeKB = 0, NewKB = 0, Vars = 0;
    RandomEngine Rng(Blocks * 7717ull);
    for (unsigned I = 0; I != Reps; ++I) {
      CFGGenOptions GOpts;
      GOpts.TargetBlocks = Blocks;
      CFG G = generateCFG(GOpts, Rng);
      ProgramGenOptions POpts;
      auto F = generateProgram(G, POpts, Rng);
      constructSSA(*F);
      Vars += F->numValues();

      CycleTimer TNative;
      TNative.start();
      DataflowLiveness Native(*F);
      TNative.stop();
      NativeCycles += TNative.totalCycles();
      NativeKB += Native.memoryBytes() / 1024.0;

      CFG G2 = CFG::fromFunction(*F);
      DFS D(G2);
      DomTree DT(G2, D);
      CycleTimer TNew;
      TNew.start();
      LiveCheck Engine(G2, D, DT);
      TNew.stop();
      NewCycles += TNew.totalCycles();
      NewKB += Engine.memoryBytes() / 1024.0;
    }
    double PreNative = double(NativeCycles) / Reps;
    double PreNew = double(NewCycles) / Reps;
    T.addRow({std::to_string(Blocks),
              TablePrinter::fmt(Vars / Reps, 0),
              TablePrinter::fmt(PreNative, 0), TablePrinter::fmt(PreNew, 0),
              TablePrinter::fmt(PreNative / PreNew),
              TablePrinter::fmt(NativeKB / Reps),
              TablePrinter::fmt(NewKB / Reps),
              TablePrinter::fmt((NewKB / Reps) / (NativeKB / Reps))});
    Records.push_back(JsonRecord()
                          .num("blocks", std::uint64_t(Blocks))
                          .num("vars", Vars / Reps)
                          .num("precompute_cycles_dataflow", PreNative)
                          .num("precompute_cycles_livecheck", PreNew)
                          .num("memory_kb_dataflow", NativeKB / Reps)
                          .num("memory_kb_livecheck", NewKB / Reps));
  }
  T.print();
  std::string JsonPath = writeBenchJson("scaling", Records);
  if (!JsonPath.empty())
    std::printf("\nMachine-readable results: %s\n", JsonPath.c_str());
  std::printf("\nReading: the New precomputation wins at common procedure "
              "sizes and its\nquadratic bitset memory overtakes the native "
              "arrays as blocks grow — the\npaper's break-even argument "
              "(Section 6.1) and the Section 8 caveat.\n");
  return 0;
}
