//===- bench/bench_storage.cpp - Old-vs-new storage layout shootout -------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the arena-backed set storage and the renumbered query plane
// against the pre-refactor layout, on random strict-SSA procedures across
// CFG sizes. Each configuration is measured as the *query flow* a client
// actually runs, not just the innermost scan:
//
//   bitset      The pre-refactor flow, preserved verbatim: per query, walk
//               the value's def-use chain into a block-id span, then query
//               the TStorage::Bitset engine (one heap BitVector per R/T
//               row, per-target DT.num() use re-translation, runtime
//               option branching). This is exactly what FunctionLiveness
//               and the batch driver did before the refactor — nothing
//               reusable existed across queries.
//   arena       The renumbered plane on TStorage::Arena: per *value*, the
//               chain is walked once and prepared (use numbers sorted/
//               deduped, def interval coordinates resolved, bitset mask
//               for high-use-count values); per query only the block is
//               translated and the specialized kernel runs over
//               contiguous rows.
//   sorted      The same prepared flow on TStorage::SortedArray.
//   block-sweep TStorage::Arena via liveInBlocks/liveOutBlocks — one
//               two-pass interval sweep per value, then bit tests.
//
// Queries are drawn per value, mostly from the def's dominance interval
// (where the variable can be live and real clients ask), value-major —
// the access pattern of SSA destruction and interference checking.
//
// Every configuration must produce byte-identical answers; the run fails
// otherwise. Each configuration runs one untimed warm pass, then Reps
// timed passes; the best pass is reported (standard practice to shed
// scheduler noise). Emits BENCH_storage.json with queries/s, memory
// bytes, and the arena-vs-bitset speedup per size.
//
//   bench_storage [--smoke]   --smoke shrinks sizes/reps for CI.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/LiveCheck.h"
#include "core/UseInfo.h"
#include "ir/CFG.h"
#include "ir/Function.h"
#include "ssa/SSAConstruction.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

struct QueryRec {
  std::uint32_t VarIdx;
  std::uint32_t Block;
  bool IsLiveOut;
};

std::uint64_t foldAnswer(std::uint64_t H, bool A) {
  return (H ^ (A ? 1u : 0u)) * 0x100000001b3ull;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One configuration under measurement: a pass functor returning the
/// answer checksum, plus the best observed pass time. Passes of all
/// configurations are interleaved round-robin so every configuration
/// samples the same machine phases — on a shared single-core box,
/// back-to-back blocks of one configuration each see different noise and
/// the ratios drift run to run; interleaving + best-of cancels that.
struct Candidate {
  const char *Name;
  std::function<std::uint64_t()> Pass;
  std::size_t MemBytes = 0;
  double BestSecs = 1e100;
  std::uint64_t Checksum = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::vector<unsigned> Sizes =
      Smoke ? std::vector<unsigned>{32, 64}
            : std::vector<unsigned>{256, 1024, 2048};
  unsigned Reps = Smoke ? 2 : 5;
  unsigned BlocksPerVar = Smoke ? 16 : 64;

  std::printf("Storage-plane shootout: pre-refactor bitset flow vs arena / "
              "sorted / block-sweep\n(single thread; identical answers "
              "enforced; per config: one warm pass, best of %u\ntimed "
              "passes; 'bitset' walks the def-use chain per query as the "
              "old code did,\nthe new planes prepare each value once)\n\n",
              Reps);

  TablePrinter Table({"Blocks", "Vars", "Queries", "Config", "Mq/s",
                      "Mem(KB)", "Speedup"});
  std::vector<JsonRecord> Records;
  bool AnswersAgree = true;
  // The acceptance tier: the paper's Section-6.1 "large procedure"
  // boundary (1024 blocks, its 32x32 break-even). The 2048 tier is kept
  // as a beyond-L2 stress point — there both layouts stall on the same
  // DRAM-bound row misses, which compresses the ratio.
  constexpr unsigned LargeTier = 1024;
  double LargeSpeedup = 0;
  std::vector<std::pair<unsigned, double>> SpeedupBySize;

  for (unsigned Blocks : Sizes) {
    // One random strict-SSA procedure per size (deterministic seed).
    RandomEngine Rng(Blocks * 9133ull + 7);
    CFGGenOptions GOpts;
    GOpts.TargetBlocks = Blocks;
    CFG G0 = generateCFG(GOpts, Rng);
    ProgramGenOptions POpts;
    auto F = generateProgram(G0, POpts, Rng);
    constructSSA(*F);

    CFG G = CFG::fromFunction(*F);
    DFS D(G);
    DomTree DT(G, D);
    unsigned N = G.numNodes();
    unsigned MaskThreshold = std::max(8u, (N + 63) / 64);

    // Engines under test: all Propagated T sets, default scan options.
    LiveCheckOptions BitsetOpts;
    BitsetOpts.Storage = TStorage::Bitset;
    LiveCheckOptions ArenaOpts;
    ArenaOpts.Storage = TStorage::Arena;
    LiveCheckOptions SortedOpts;
    SortedOpts.Storage = TStorage::SortedArray;
    LiveCheck Bitset(G, D, DT, BitsetOpts);
    LiveCheck Arena(G, D, DT, ArenaOpts);
    LiveCheck Sorted(G, D, DT, SortedOpts);

    // Queryable values and a value-major query stream. Blocks are drawn
    // 3-in-4 from the def's dominance interval, 1-in-4 uniform (so the
    // precondition-reject path stays represented).
    std::vector<const Value *> Vals;
    std::vector<unsigned> Defs;
    for (const auto &V : F->values())
      if (V->hasSingleDef() && V->hasUses()) {
        Vals.push_back(V.get());
        Defs.push_back(defBlockId(*V));
      }
    std::vector<QueryRec> Stream;
    for (std::uint32_t VI = 0; VI != Vals.size(); ++VI) {
      unsigned Lo = DT.num(Defs[VI]), Hi = DT.maxnum(Defs[VI]);
      for (unsigned K = 0; K != BlocksPerVar; ++K) {
        std::uint32_t Block = (K % 4 == 3 || Hi == Lo)
                                  ? Rng.nextBelow(N)
                                  : DT.nodeAtNum(Rng.nextInRange(Lo, Hi));
        Stream.push_back({VI, Block, (K & 1) != 0});
      }
    }
    std::uint64_t QueriesPerPass = Stream.size();

    std::vector<Candidate> Cands;

    // --- bitset: the pre-refactor flow, chain walk per query. -----------
    std::vector<unsigned> LegacyUses;
    Cands.push_back(Candidate{
        "bitset",
        [&] {
          std::uint64_t H = 0xcbf29ce484222325ull;
          for (const QueryRec &Q : Stream) {
            const Value &V = *Vals[Q.VarIdx];
            LegacyUses.clear();
            appendLiveUseBlocks(V, LegacyUses);
            bool A = Q.IsLiveOut
                         ? Bitset.isLiveOut(Defs[Q.VarIdx], Q.Block,
                                            LegacyUses)
                         : Bitset.isLiveIn(Defs[Q.VarIdx], Q.Block,
                                           LegacyUses);
            H = foldAnswer(H, A);
          }
          return H;
        },
        Bitset.memoryBytes()});

    // --- arena / sorted: the renumbered plane, one preparation per value
    // (chain walk, numbering, def coordinates, optional mask). -----------
    std::vector<unsigned> Nums;
    BitVector Mask;
    auto MakePrepared = [&](const LiveCheck &Engine) {
      return [&] {
        std::uint64_t H = 0xcbf29ce484222325ull;
        LiveCheck::PreparedVar PV;
        std::uint32_t Current = ~0u;
        for (const QueryRec &Q : Stream) {
          if (Q.VarIdx != Current) {
            Current = Q.VarIdx;
            const Value &V = *Vals[Q.VarIdx];
            Nums.clear();
            appendLiveUseBlocks(V, Nums);
            for (unsigned &U : Nums)
              U = DT.num(U);
            std::sort(Nums.begin(), Nums.end());
            Nums.erase(std::unique(Nums.begin(), Nums.end()), Nums.end());
            Engine.prepareDef(Defs[Q.VarIdx], PV);
            PV.NumsBegin = Nums.data();
            PV.NumsEnd = Nums.data() + Nums.size();
            if (Nums.size() >= MaskThreshold) {
              Mask.resize(N);
              Mask.reset();
              for (unsigned U : Nums)
                Mask.set(U);
              PV.setMask(Mask);
            } else {
              PV.clearMask();
            }
          }
          bool A = Q.IsLiveOut ? Engine.isLiveOutPrepared(PV, Q.Block)
                               : Engine.isLiveInPrepared(PV, Q.Block);
          H = foldAnswer(H, A);
        }
        return H;
      };
    };
    Cands.push_back(
        Candidate{"arena", MakePrepared(Arena), Arena.memoryBytes()});
    Cands.push_back(
        Candidate{"sorted", MakePrepared(Sorted), Sorted.memoryBytes()});

    // --- block-sweep: one interval sweep per value, then bit tests. ------
    std::vector<unsigned> SweepUses;
    BitVector In, Out;
    Cands.push_back(Candidate{
        "block-sweep",
        [&] {
          std::uint64_t H = 0xcbf29ce484222325ull;
          std::uint32_t Current = ~0u;
          for (const QueryRec &Q : Stream) {
            if (Q.VarIdx != Current) {
              Current = Q.VarIdx;
              const Value &V = *Vals[Q.VarIdx];
              SweepUses.clear();
              appendLiveUseBlocks(V, SweepUses);
              Arena.liveInOutBlocks(Defs[Q.VarIdx], SweepUses, In, Out);
            }
            bool A = Q.IsLiveOut ? Out.test(Q.Block) : In.test(Q.Block);
            H = foldAnswer(H, A);
          }
          return H;
        },
        Arena.memoryBytes()});

    // Warm every configuration once, then interleave the timed passes.
    for (Candidate &C : Cands)
      C.Checksum = C.Pass();
    for (unsigned R = 0; R != Reps; ++R)
      for (Candidate &C : Cands) {
        auto Start = std::chrono::steady_clock::now();
        std::uint64_t H = C.Pass();
        C.BestSecs = std::min(C.BestSecs, secondsSince(Start));
        if (H != C.Checksum) {
          std::printf("FAIL: %s answers unstable across passes\n", C.Name);
          AnswersAgree = false;
        }
      }

    struct Run {
      const char *Name;
      double Qps = 0;
      std::uint64_t Checksum = 0;
      std::size_t MemBytes = 0;
    };
    std::vector<Run> Runs;
    for (const Candidate &C : Cands)
      Runs.push_back(
          {C.Name, QueriesPerPass / C.BestSecs, C.Checksum, C.MemBytes});

    double BitsetQps = Runs[0].Qps;
    double ArenaSpeedup = 0;
    for (const Run &R : Runs) {
      if (R.Checksum != Runs[0].Checksum) {
        std::printf("FAIL: %s answers differ from bitset at %u blocks "
                    "(%016llx vs %016llx)\n",
                    R.Name, Blocks,
                    static_cast<unsigned long long>(R.Checksum),
                    static_cast<unsigned long long>(Runs[0].Checksum));
        AnswersAgree = false;
      }
      double Speedup = R.Qps / BitsetQps;
      if (std::strcmp(R.Name, "arena") == 0)
        ArenaSpeedup = Speedup;
      Table.addRow({std::to_string(Blocks), std::to_string(Vals.size()),
                    std::to_string(QueriesPerPass), R.Name,
                    TablePrinter::fmt(R.Qps / 1e6),
                    TablePrinter::fmt(R.MemBytes / 1024.0),
                    TablePrinter::fmt(Speedup)});
      Records.push_back(JsonRecord()
                            .num("blocks", std::uint64_t(Blocks))
                            .str("config", R.Name)
                            .num("queries_per_second", R.Qps)
                            .num("memory_bytes", std::uint64_t(R.MemBytes))
                            .num("speedup_vs_bitset", Speedup));
    }
    SpeedupBySize.push_back({Blocks, ArenaSpeedup});
    if (Blocks == LargeTier)
      LargeSpeedup = ArenaSpeedup;
  }

  Table.print();
  std::string JsonPath = writeBenchJson("storage", Records);
  if (!JsonPath.empty())
    std::printf("\nMachine-readable results: %s\n", JsonPath.c_str());

  std::printf("\narena vs pre-refactor bitset:");
  for (auto [Blocks, S] : SpeedupBySize)
    std::printf(" %.2fx @ %u blocks;", S, Blocks);
  std::printf("\n");
  if (LargeSpeedup != 0)
    std::printf("large workload (%u blocks, the paper's Section-6.1 "
                "large-procedure tier): %.2fx (target >= 1.30x) %s\n",
                LargeTier, LargeSpeedup,
                LargeSpeedup >= 1.30 ? "PASS" : "BELOW TARGET");
  if (!AnswersAgree) {
    std::printf("FAIL: storage planes disagree\n");
    return 1;
  }
  return 0;
}
