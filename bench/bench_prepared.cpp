//===- bench/bench_prepared.cpp - Cached vs per-query prepared flow -------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the value-indexed prepared cache (core/PreparedCache) against
// the per-query preparation flows it replaced, on random strict-SSA
// procedures across CFG sizes. The stream is *randomly ordered* across
// values — the shape of a server query batch — so per-value grouping
// cannot rescue the uncached flows; each configuration runs the identical
// stream:
//
//   block-id   Chain walk per query, classic block-id entry points — the
//              pre-migration FunctionLiveness flow.
//   per-query  Chain walk + preorder numbering + prepareDef per query —
//              what the batch driver's prepared plane did before the
//              cache.
//   cached     PreparedCache: the chain is walked/numbered/deduped once
//              per value on first touch; every query after that is a
//              table read plus the prepared kernel. This is the
//              production path of FunctionLiveness, the batch driver,
//              and the server sessions.
//
// Every configuration must produce byte-identical answers; the run fails
// otherwise. One untimed warm pass per configuration (which also
// populates the cache — the steady-state regime is exactly what the
// cached flow exists to serve), then Reps interleaved timed passes,
// best-of reported. Emits BENCH_prepared.json with queries/s, cache
// memory, and speedup_cached_vs_perquery / speedup_cached_vs_blockid per
// size — ratio metrics the CI trend gate tracks against the committed
// baseline.
//
//   bench_prepared [--smoke]   --smoke shrinks sizes/reps for CI.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/LiveCheck.h"
#include "core/PreparedCache.h"
#include "core/UseInfo.h"
#include "ir/CFG.h"
#include "ir/Function.h"
#include "ssa/SSAConstruction.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

struct QueryRec {
  std::uint32_t VarIdx;
  std::uint32_t Block;
  bool IsLiveOut;
};

std::uint64_t foldAnswer(std::uint64_t H, bool A) {
  return (H ^ (A ? 1u : 0u)) * 0x100000001b3ull;
}

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

struct Candidate {
  const char *Name;
  std::function<std::uint64_t()> Pass;
  std::size_t MemBytes = 0;
  double BestSecs = 1e100;
  std::uint64_t Checksum = 0;
};

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::vector<unsigned> Sizes =
      Smoke ? std::vector<unsigned>{32, 64}
            : std::vector<unsigned>{256, 1024, 2048};
  unsigned Reps = Smoke ? 2 : 5;
  unsigned QueriesPerVar = Smoke ? 16 : 64;

  std::printf("Prepared-plane shootout: cached per-value entries vs "
              "per-query preparation\n(single thread; identical answers "
              "enforced; random-order stream; per config: one\nwarm pass, "
              "best of %u timed passes)\n\n",
              Reps);

  TablePrinter Table({"Blocks", "Vars", "Queries", "Config", "Mq/s",
                      "CacheKB", "Speedup"});
  std::vector<JsonRecord> Records;
  bool AnswersAgree = true;
  constexpr unsigned LargeTier = 1024;
  double LargeSpeedup = 0;
  std::vector<std::pair<unsigned, double>> SpeedupBySize;

  for (unsigned Blocks : Sizes) {
    RandomEngine Rng(Blocks * 6367ull + 11);
    CFGGenOptions GOpts;
    GOpts.TargetBlocks = Blocks;
    CFG G0 = generateCFG(GOpts, Rng);
    ProgramGenOptions POpts;
    auto F = generateProgram(G0, POpts, Rng);
    constructSSA(*F);

    CFG G = CFG::fromFunction(*F);
    DFS D(G);
    DomTree DT(G, D);
    unsigned N = G.numNodes();
    unsigned MaskThreshold = std::max(8u, (N + 63) / 64);
    LiveCheck Engine(G, D, DT);

    std::vector<const Value *> Vals;
    std::vector<unsigned> Defs;
    for (const auto &V : F->values())
      if (V->hasSingleDef() && V->hasUses()) {
        Vals.push_back(V.get());
        Defs.push_back(defBlockId(*V));
      }

    // Value-random stream, blocks drawn 3-in-4 from the def's dominance
    // interval (where clients actually ask); then shuffled so consecutive
    // queries almost never share a value.
    std::vector<QueryRec> Stream;
    for (std::uint32_t VI = 0; VI != Vals.size(); ++VI) {
      unsigned Lo = DT.num(Defs[VI]), Hi = DT.maxnum(Defs[VI]);
      for (unsigned K = 0; K != QueriesPerVar; ++K) {
        std::uint32_t Block = (K % 4 == 3 || Hi == Lo)
                                  ? Rng.nextBelow(N)
                                  : DT.nodeAtNum(Rng.nextInRange(Lo, Hi));
        Stream.push_back({VI, Block, (K & 1) != 0});
      }
    }
    for (std::size_t I = Stream.size(); I > 1; --I)
      std::swap(Stream[I - 1], Stream[Rng.nextBelow(unsigned(I))]);
    std::uint64_t QueriesPerPass = Stream.size();

    std::vector<Candidate> Cands;

    // --- block-id: chain walk per query, classic entries. ---------------
    std::vector<unsigned> BlockUses;
    Cands.push_back(Candidate{
        "block-id",
        [&] {
          std::uint64_t H = 0xcbf29ce484222325ull;
          for (const QueryRec &Q : Stream) {
            const Value &V = *Vals[Q.VarIdx];
            BlockUses.clear();
            appendLiveUseBlocks(V, BlockUses);
            bool A = Q.IsLiveOut
                         ? Engine.isLiveOut(Defs[Q.VarIdx], Q.Block,
                                            BlockUses)
                         : Engine.isLiveIn(Defs[Q.VarIdx], Q.Block,
                                           BlockUses);
            H = foldAnswer(H, A);
          }
          return H;
        },
        0});

    // --- per-query: the pre-cache prepared flow (walk + number +
    // prepareDef on every query, mask above the threshold). -------------
    std::vector<unsigned> Nums;
    BitVector Mask;
    Cands.push_back(Candidate{
        "per-query",
        [&] {
          std::uint64_t H = 0xcbf29ce484222325ull;
          LiveCheck::PreparedVar PV;
          for (const QueryRec &Q : Stream) {
            const Value &V = *Vals[Q.VarIdx];
            Nums.clear();
            appendLiveUseBlocks(V, Nums);
            for (unsigned &U : Nums)
              U = DT.num(U);
            std::sort(Nums.begin(), Nums.end());
            Nums.erase(std::unique(Nums.begin(), Nums.end()), Nums.end());
            Engine.prepareDef(Defs[Q.VarIdx], PV);
            PV.NumsBegin = Nums.data();
            PV.NumsEnd = Nums.data() + Nums.size();
            if (Nums.size() >= MaskThreshold) {
              Mask.resize(N);
              Mask.reset();
              for (unsigned U : Nums)
                Mask.set(U);
              PV.setMask(Mask);
            } else {
              PV.clearMask();
            }
            bool A = Q.IsLiveOut ? Engine.isLiveOutPrepared(PV, Q.Block)
                                 : Engine.isLiveInPrepared(PV, Q.Block);
            H = foldAnswer(H, A);
          }
          return H;
        },
        0});

    // --- cached: the production plane. ----------------------------------
    PreparedCache Cache(*F, Engine, DT);
    Cache.sizeToFunction();
    Cands.push_back(Candidate{
        "cached",
        [&] {
          std::uint64_t H = 0xcbf29ce484222325ull;
          for (const QueryRec &Q : Stream) {
            const LiveCheck::PreparedVar &PV =
                Cache.ensure(*Vals[Q.VarIdx]);
            bool A = Q.IsLiveOut ? Engine.isLiveOutPrepared(PV, Q.Block)
                                 : Engine.isLiveInPrepared(PV, Q.Block);
            H = foldAnswer(H, A);
          }
          return H;
        },
        0});

    for (Candidate &C : Cands)
      C.Checksum = C.Pass();
    Cands[2].MemBytes = Cache.memoryBytes();
    for (unsigned R = 0; R != Reps; ++R)
      for (Candidate &C : Cands) {
        auto Start = std::chrono::steady_clock::now();
        std::uint64_t H = C.Pass();
        C.BestSecs = std::min(C.BestSecs, secondsSince(Start));
        if (H != C.Checksum) {
          std::printf("FAIL: %s answers unstable across passes\n", C.Name);
          AnswersAgree = false;
        }
      }

    double BlockIdQps = QueriesPerPass / Cands[0].BestSecs;
    double PerQueryQps = QueriesPerPass / Cands[1].BestSecs;
    double CachedQps = QueriesPerPass / Cands[2].BestSecs;
    double SpeedupVsPerQuery = CachedQps / PerQueryQps;
    double SpeedupVsBlockId = CachedQps / BlockIdQps;
    for (const Candidate &C : Cands) {
      if (C.Checksum != Cands[0].Checksum) {
        std::printf("FAIL: %s answers differ from block-id at %u blocks\n",
                    C.Name, Blocks);
        AnswersAgree = false;
      }
      double Qps = QueriesPerPass / C.BestSecs;
      Table.addRow({std::to_string(Blocks), std::to_string(Vals.size()),
                    std::to_string(QueriesPerPass), C.Name,
                    TablePrinter::fmt(Qps / 1e6),
                    TablePrinter::fmt(C.MemBytes / 1024.0),
                    TablePrinter::fmt(Qps / BlockIdQps)});
    }
    Records.push_back(
        JsonRecord()
            .num("blocks", std::uint64_t(Blocks))
            .num("blockid_queries_per_second", BlockIdQps)
            .num("perquery_queries_per_second", PerQueryQps)
            .num("cached_queries_per_second", CachedQps)
            .num("cache_memory_bytes",
                 std::uint64_t(Cands[2].MemBytes))
            // Same key bench_storage uses, so cross-bench memory tooling
            // reads one field name.
            .num("memory_bytes", std::uint64_t(Cands[2].MemBytes))
            .num("speedup_cached_vs_perquery", SpeedupVsPerQuery)
            .num("speedup_cached_vs_blockid", SpeedupVsBlockId));
    SpeedupBySize.push_back({Blocks, SpeedupVsPerQuery});
    if (Blocks == LargeTier)
      LargeSpeedup = SpeedupVsPerQuery;
  }

  Table.print();
  std::string JsonPath = writeBenchJson("prepared", Records);
  if (!JsonPath.empty())
    std::printf("\nMachine-readable results: %s\n", JsonPath.c_str());

  std::printf("\ncached vs per-query prepare:");
  for (auto [Blocks, S] : SpeedupBySize)
    std::printf(" %.2fx @ %u blocks;", S, Blocks);
  std::printf("\n");
  if (LargeSpeedup != 0)
    std::printf("large workload (%u blocks): %.2fx (target >= 1.20x) %s\n",
                LargeTier, LargeSpeedup,
                LargeSpeedup >= 1.20 ? "PASS" : "BELOW TARGET");
  if (!AnswersAgree) {
    std::printf("FAIL: prepared flows disagree\n");
    return 1;
  }
  return 0;
}
