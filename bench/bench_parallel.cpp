//===- bench/bench_parallel.cpp - Query-throughput thread scaling ---------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Thread-scaling sweep for the batch liveness pipeline: one SPEC-profile
// module, one fixed query workload, thread counts 1..2*cores. Because
// LiveCheck queries are read-only against shared precomputed bitsets (stats
// go to per-worker sinks), throughput should scale near-linearly until the
// core count is exhausted. The precompute phase is also timed per thread
// count, and everything lands in BENCH_parallel.json for trend tracking.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "pipeline/BatchLivenessDriver.h"

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

using namespace ssalive;
using namespace ssalive::bench;

int main(int Argc, char **Argv) {
  unsigned Scale = parseScalePercent(Argc, Argv, 10);
  std::size_t Queries = 400000;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--queries=", 10) == 0)
      Queries = std::strtoull(Argv[I] + 10, nullptr, 10);

  // One 176.gcc-profile module, shared by every thread count.
  const SpecProfile &P = spec2000Profiles()[2];
  RandomEngine Rng(0xBA7C4);
  unsigned NumFuncs = scaledProcedures(P, Scale) / 4 + 8;
  std::vector<std::unique_ptr<Function>> Module;
  std::vector<const Function *> Funcs;
  for (unsigned I = 0; I != NumFuncs; ++I) {
    Module.push_back(synthesizeProcedure(P, Rng));
    Funcs.push_back(Module.back().get());
  }
  std::vector<BatchQuery> Workload =
      BatchLivenessDriver::generateWorkload(Funcs, 0xFEED, Queries);

  unsigned Cores = std::thread::hardware_concurrency();
  if (Cores == 0)
    Cores = 1;
  std::vector<unsigned> ThreadCounts{1};
  for (unsigned T = 2; T <= 2 * Cores; T *= 2)
    ThreadCounts.push_back(T);
  if (ThreadCounts.back() < 4)
    ThreadCounts.push_back(4); // The acceptance point even on small hosts.

  std::printf("Parallel scaling: %u functions, %zu queries, %u hardware "
              "threads\n(query throughput per worker count; answers are "
              "identical across rows)\n\n",
              NumFuncs, Workload.size(), Cores);

  TablePrinter T({"Threads", "Pre(ms)", "Query(ms)", "kQueries/s",
                  "Speedup", "Checksum"});
  std::vector<JsonRecord> Records;
  double BaselineQps = 0;
  std::uint64_t BaselineChecksum = 0;
  bool ChecksumsAgree = true;
  for (unsigned Threads : ThreadCounts) {
    BatchOptions Opts;
    Opts.Backend = BatchBackend::LiveCheckPropagated;
    // Pinned to the block-id plane: this bench measures how the per-query
    // engine scan scales across threads, and its committed baseline was
    // produced on this plane. The cached prepared plane (the production
    // default) moves the per-value chain walk into the serial precompute
    // phase, which is bench_prepared's subject, not this one's.
    Opts.Plane = QueryPlane::BlockId;
    Opts.Threads = Threads;
    BatchLivenessDriver Driver(Funcs, Opts);
    // Cold run builds the per-function engines (timed as precompute);
    // the warm run measures steady-state query throughput.
    BatchResult Cold = Driver.run(Workload);
    BatchResult Warm = Driver.run(Workload);
    double Qps = Warm.queriesPerSecond();
    if (Threads == 1) {
      BaselineQps = Qps;
      BaselineChecksum = Warm.checksum();
    }
    ChecksumsAgree &= Warm.checksum() == BaselineChecksum;
    char Sum[32];
    std::snprintf(Sum, sizeof(Sum), "%016llx",
                  static_cast<unsigned long long>(Warm.checksum()));
    T.addRow({std::to_string(Threads),
              TablePrinter::fmt(Cold.PrecomputeMillis),
              TablePrinter::fmt(Warm.QueryMillis),
              TablePrinter::fmt(Qps / 1e3, 0),
              TablePrinter::fmt(BaselineQps > 0 ? Qps / BaselineQps : 0),
              Sum});
    Records.push_back(JsonRecord()
                          .str("backend", batchBackendName(Opts.Backend))
                          .num("threads", std::uint64_t(Threads))
                          .num("functions", std::uint64_t(NumFuncs))
                          .num("queries", std::uint64_t(Workload.size()))
                          .num("precompute_ms", Cold.PrecomputeMillis)
                          .num("query_ms", Warm.QueryMillis)
                          .num("queries_per_sec", Qps)
                          .num("speedup_vs_1thread",
                               BaselineQps > 0 ? Qps / BaselineQps : 0));
  }
  T.print();
  std::printf("\n%s\n", ChecksumsAgree
                            ? "All rows computed identical answers."
                            : "ERROR: checksums diverge across rows!");
  std::string Path = writeBenchJson("parallel", Records);
  if (!Path.empty())
    std::printf("Machine-readable results: %s\n", Path.c_str());
  return ChecksumsAgree ? 0 : 1;
}
