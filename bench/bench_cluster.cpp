//===- bench/bench_cluster.cpp - Shard-router aggregate throughput --------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the shard router end to end: M concurrent clients against one
// in-process LivenessServer, first with a single SessionManager shard,
// then with two — same clients, same corpus, same warm prepared-plane
// 4096-batch workload. Each shard owns its own session table and pool, so
// the aggregate warm q/s across shard counts is the scaling story of the
// router: on a multi-core host the two-shard run should clear ~1.15x the
// single-shard aggregate; on the 1-core CI container the pools time-slice
// one core and the honest expectation is ~1.0x (the bench prints the
// caveat and records whatever the machine produced).
//
//   bench_cluster [--smoke] [--clients=M]
//
// Emits BENCH_cluster.json. The gated ratio is speedup_shards2_vs_1
// (threshold 0.50 in CI: a trend gate against collapse, not a multi-core
// assertion the container cannot honor).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/BatchLivenessDriver.h"
#include "server/LivenessServer.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

using namespace ssalive;
using namespace ssalive::bench;
namespace proto = ssalive::protocol;

namespace {

double nowMillis() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

/// Reusable rendezvous: the main thread and every client arrive, then all
/// are released together — so the timed window starts after every session
/// is warm and ends when the last client finishes.
class Barrier {
public:
  explicit Barrier(unsigned Parties) : Parties(Parties) {}

  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(M);
    unsigned Gen = Generation;
    if (++Arrived == Parties) {
      Arrived = 0;
      ++Generation;
      CV.notify_all();
      return;
    }
    CV.wait(Lock, [&] { return Generation != Gen; });
  }

private:
  std::mutex M;
  std::condition_variable CV;
  unsigned Parties;
  unsigned Arrived = 0;
  unsigned Generation = 0;
};

struct RunResult {
  double AggregateQps = 0;
  unsigned ShardsUsed = 0;
};

/// One full measurement: M clients x `Shards` shards, returns the best
/// aggregate warm q/s over `Rounds` barrier-synchronized timed rounds.
RunResult runCluster(unsigned Shards, unsigned Clients,
                     const std::string &Text,
                     const std::vector<BatchQuery> &Workload,
                     unsigned Rounds, unsigned Passes) {
  server::ServerConfig Cfg;
  Cfg.Threads = 1; // Scaling must come from the shard dimension alone.
  Cfg.Shards = Shards;
  server::LivenessServer Server(Cfg);

  std::vector<int> ClientFds;
  std::vector<std::thread> Handlers;
  for (unsigned I = 0; I != Clients; ++I) {
    int Pair[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair) != 0) {
      std::perror("socketpair");
      std::exit(1);
    }
    ClientFds.push_back(Pair[0]);
    Handlers.emplace_back([&Server, Fd = Pair[1]] {
      Server.serveStream(Fd, Fd);
      ::close(Fd);
    });
  }

  // Rounds + warm-up phase, with main as the (Clients+1)-th party.
  Barrier Sync(Clients + 1);
  std::vector<std::thread> Drivers;
  for (unsigned C = 0; C != Clients; ++C)
    Drivers.emplace_back([&, C] {
      int Fd = ClientFds[C];
      std::vector<std::uint8_t> Reply;
      auto fail = [&](const char *What) {
        std::fprintf(stderr, "client %u: %s failed\n", C, What);
        std::exit(1);
      };
      if (!proto::roundTrip(Fd, Fd,
                            proto::encodeLoadModule(
                                static_cast<std::uint8_t>(
                                    BatchBackend::LiveCheckPropagated),
                                static_cast<std::uint8_t>(
                                    QueryPlane::Prepared),
                                Text),
                            Reply) ||
          Reply.empty() ||
          Reply[0] !=
              static_cast<std::uint8_t>(proto::Opcode::ModuleLoaded))
        fail("load-module");
      auto sendSpan = [&](std::size_t Begin, std::size_t End) {
        std::vector<proto::QueryItem> Items;
        Items.reserve(End - Begin);
        for (std::size_t I = Begin; I != End; ++I)
          Items.push_back({Workload[I].FuncIndex, Workload[I].ValueId,
                           Workload[I].BlockId, Workload[I].IsLiveOut});
        return proto::encodeQueryBatch(Items);
      };
      auto onePass = [&] {
        for (std::size_t Begin = 0; Begin < Workload.size(); Begin += 4096) {
          std::size_t End = std::min(Workload.size(), Begin + 4096);
          if (!proto::roundTrip(Fd, Fd, sendSpan(Begin, End), Reply))
            fail("query batch");
        }
      };
      onePass(); // Precompute + prepared-cache fill.
      for (unsigned R = 0; R != Rounds; ++R) {
        Sync.arriveAndWait(); // Round start.
        for (unsigned P = 0; P != Passes; ++P)
          onePass();
        Sync.arriveAndWait(); // Round end.
      }
    });

  double BestMillis = 0;
  for (unsigned R = 0; R != Rounds; ++R) {
    Sync.arriveAndWait();
    double T0 = nowMillis();
    Sync.arriveAndWait();
    double Millis = nowMillis() - T0;
    if (R == 0 || Millis < BestMillis)
      BestMillis = Millis;
  }
  for (std::thread &T : Drivers)
    T.join();

  RunResult Result;
  Result.AggregateQps = double(Workload.size()) * Clients * Passes /
                        (BestMillis / 1e3);
  for (unsigned I = 0; I != Server.router().numShards(); ++I)
    if (Server.router().shard(I).sessionsCreated() != 0)
      ++Result.ShardsUsed;

  for (int Fd : ClientFds)
    ::close(Fd);
  for (std::thread &T : Handlers)
    T.join();
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  unsigned Clients = 4;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--clients=", 10) == 0)
      Clients = std::max(1u, static_cast<unsigned>(
                                 std::strtoul(Argv[I] + 10, nullptr, 10)));
  }

  // ---- Corpus: SPEC-profile procedures (176.gcc row), one shared module
  // text; every client session loads and prepares its own copy.
  RandomEngine Rng(0xc1a5ull);
  const SpecProfile &P = spec2000Profiles()[2];
  unsigned NumFuncs = Smoke ? 6 : 12;
  std::string Text;
  for (unsigned I = 0; I != NumFuncs; ++I)
    Text += printFunction(*synthesizeProcedure(P, Rng)) + "\n";
  ModuleParseResult Parsed = parseModule(Text);
  if (!Parsed.Error.empty()) {
    std::fprintf(stderr, "corpus does not parse: %s\n", Parsed.Error.c_str());
    return 1;
  }
  std::vector<const Function *> Funcs;
  for (const auto &F : Parsed.Funcs)
    Funcs.push_back(F.get());
  std::size_t WarmQueries = Smoke ? 20000 : 120000;
  std::vector<BatchQuery> Workload =
      BatchLivenessDriver::generateWorkload(Funcs, 42, WarmQueries);
  unsigned Rounds = Smoke ? 2 : 3;
  unsigned Passes = Smoke ? 1 : 2;

  const unsigned Cores = std::thread::hardware_concurrency();
  std::printf("bench_cluster: %u functions, %zu warm queries/pass, "
              "%u clients, 1 pool thread per shard, %u core(s)\n",
              NumFuncs, Workload.size(), Clients, Cores);

  TablePrinter Table({"shards", "clients", "shards used", "queries/s"});
  std::vector<JsonRecord> Records;
  double Qps1 = 0, Qps2 = 0;
  for (unsigned Shards : {1u, 2u}) {
    RunResult R = runCluster(Shards, Clients, Text, Workload, Rounds,
                             Passes);
    if (Shards == 1)
      Qps1 = R.AggregateQps;
    else
      Qps2 = R.AggregateQps;
    Table.addRow({std::to_string(Shards), std::to_string(Clients),
                  std::to_string(R.ShardsUsed),
                  TablePrinter::fmt(R.AggregateQps, 0)});
    JsonRecord J;
    J.num("shards", std::uint64_t(Shards));
    J.num("clients", std::uint64_t(Clients));
    J.num("shards_used", std::uint64_t(R.ShardsUsed));
    J.num("queries_per_second", R.AggregateQps);
    Records.push_back(std::move(J));
  }

  {
    JsonRecord J;
    J.str("metric", "sharding");
    J.num("warm_cluster_queries_per_second", Qps2);
    J.num("speedup_shards2_vs_1", Qps1 > 0 ? Qps2 / Qps1 : 0);
    Records.push_back(std::move(J));
  }

  Table.print();
  std::printf("warm aggregate throughput: 1 shard %.0f q/s, 2 shards %.0f "
              "q/s (%.2fx)\n",
              Qps1, Qps2, Qps1 > 0 ? Qps2 / Qps1 : 0);
  if (Cores < 2)
    std::printf("note: %u-core host — shard pools time-slice one core, so "
                "~1.0x is the honest expectation here; the >= 1.15x "
                "scaling target needs a multi-core machine\n",
                Cores ? Cores : 1);

  std::string Path = writeBenchJson("cluster", Records);
  if (!Path.empty())
    std::printf("wrote %s\n", Path.c_str());
  return 0;
}
