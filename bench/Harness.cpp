//===- bench/Harness.cpp - Shared evaluation harness ----------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "ssa/SSAConstruction.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace ssalive;
using namespace ssalive::bench;

std::unique_ptr<Function>
ssalive::bench::synthesizeProcedure(const SpecProfile &P, RandomEngine &Rng) {
  CFGGenOptions GOpts;
  GOpts.TargetBlocks = sampleBlockCount(P, Rng);
  // Irreducibility is rare but clustered in the paper's corpus: 7 of 4823
  // functions (0.145%) carried all 60 irreducible edges, i.e. ~8.6 per
  // affected function. Roll ~0.15% of procedures as goto-heavy.
  if (Rng.nextBelow(10000) < 15)
    GOpts.GotoEdges = 6 + Rng.nextBelow(9);
  CFG G = generateCFG(GOpts, Rng);

  ProgramGenOptions POpts;
  POpts.ReadsAtMost1 = P.PctUsesLe1;
  POpts.ReadsAtMost2 = P.PctUsesLe2;
  POpts.ReadsAtMost3 = P.PctUsesLe3;
  POpts.ReadsAtMost4 = P.PctUsesLe4;
  POpts.MaxReads = P.MaxUses;
  auto F = generateProgram(G, POpts, Rng);
  constructSSA(*F, PhiPlacement::Pruned);
  return F;
}

unsigned ssalive::bench::parseScalePercent(int Argc, char **Argv,
                                           unsigned Default) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0) {
      int V = std::atoi(Arg + 8);
      if (V >= 1 && V <= 100)
        return static_cast<unsigned>(V);
      std::fprintf(stderr, "warning: ignoring invalid --scale '%s'\n", Arg);
    }
  }
  return Default;
}

unsigned ssalive::bench::scaledProcedures(const SpecProfile &P,
                                          unsigned ScalePercent) {
  unsigned N = (P.Procedures * ScalePercent + 99) / 100;
  return N < 5 ? 5 : N;
}

JsonRecord &JsonRecord::str(const std::string &Key, const std::string &V) {
  std::string Escaped;
  for (char C : V) {
    if (C == '"' || C == '\\')
      Escaped += '\\';
    Escaped += C;
  }
  Fields.emplace_back(Key, "\"" + Escaped + "\"");
  return *this;
}

JsonRecord &JsonRecord::num(const std::string &Key, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  Fields.emplace_back(Key, Buf);
  return *this;
}

JsonRecord &JsonRecord::num(const std::string &Key, std::uint64_t V) {
  Fields.emplace_back(Key, std::to_string(V));
  return *this;
}

std::string JsonRecord::render() const {
  std::string Out = "{";
  for (size_t I = 0; I != Fields.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += "\"" + Fields[I].first + "\": " + Fields[I].second;
  }
  return Out + "}";
}

std::string
ssalive::bench::writeBenchJson(const std::string &Name,
                               const std::vector<JsonRecord> &Records) {
  std::string Path = "BENCH_" + Name + ".json";
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << "{\"bench\": \"" << Name << "\", \"records\": [\n";
  for (size_t I = 0; I != Records.size(); ++I)
    Out << "  " << Records[I].render() << (I + 1 != Records.size() ? ",\n"
                                                                   : "\n");
  Out << "]}\n";
  return Out ? Path : "";
}

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::fmt(double V, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

void TablePrinter::print() const {
  std::vector<size_t> Width(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Width[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size() && C != Width.size(); ++C)
      Width[C] = std::max(Width[C], Row[C].size());

  auto printRow = [&Width](const std::vector<std::string> &Cells,
                           bool LeftFirst) {
    for (size_t C = 0; C != Cells.size() && C != Width.size(); ++C) {
      if (C == 0 && LeftFirst)
        std::printf("%-*s", static_cast<int>(Width[C]), Cells[C].c_str());
      else
        std::printf("  %*s", static_cast<int>(Width[C]), Cells[C].c_str());
    }
    std::printf("\n");
  };

  printRow(Headers, true);
  size_t Total = 0;
  for (size_t C = 0; C != Width.size(); ++C)
    Total += Width[C] + 2;
  for (size_t I = 0; I + 2 < Total; ++I)
    std::printf("-");
  std::printf("\n");
  for (const auto &Row : Rows)
    printRow(Row, true);
}
