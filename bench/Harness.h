//===- bench/Harness.h - Shared evaluation harness --------------*- C++ -*-===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table reproductions: synthesizing one
/// procedure of a SPEC-profile workload (CFG -> program -> strict SSA) and
/// formatting aligned text tables with paper-vs-measured rows.
///
//===----------------------------------------------------------------------===//

#ifndef SSALIVE_BENCH_HARNESS_H
#define SSALIVE_BENCH_HARNESS_H

#include "ir/Function.h"
#include "support/RandomEngine.h"
#include "workload/SpecProfile.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ssalive::bench {

/// One synthesized procedure of a profile's corpus, in strict SSA form.
/// A small fraction of procedures (matching the paper's 7 of 4823) carry
/// injected goto edges and may be irreducible.
std::unique_ptr<Function> synthesizeProcedure(const SpecProfile &P,
                                              RandomEngine &Rng);

/// Parses "--scale=<percent>" (1..100) from argv; the harnesses synthesize
/// ceil(Procedures * percent / 100) procedures per benchmark. Default 100.
unsigned parseScalePercent(int Argc, char **Argv, unsigned Default = 100);

/// Scaled procedure count, at least 5.
unsigned scaledProcedures(const SpecProfile &P, unsigned ScalePercent);

/// One flat JSON object of string/number fields, built in insertion order.
/// The benches emit their measurements through this so the perf trajectory
/// is machine-readable across PRs (BENCH_*.json files next to the binary).
class JsonRecord {
public:
  JsonRecord &str(const std::string &Key, const std::string &V);
  JsonRecord &num(const std::string &Key, double V);
  JsonRecord &num(const std::string &Key, std::uint64_t V);

  /// The record as a JSON object literal.
  std::string render() const;

private:
  std::vector<std::pair<std::string, std::string>> Fields;
};

/// Writes {"bench": <name>, "records": [<records>]} to BENCH_<name>.json in
/// the working directory. Returns the path written, or "" on I/O failure.
std::string writeBenchJson(const std::string &Name,
                           const std::vector<JsonRecord> &Records);

/// Minimal aligned-column table printer (right-aligned cells).
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers);

  void addRow(std::vector<std::string> Cells);
  /// Renders to stdout, padding columns to their widest cell.
  void print() const;

  /// Fixed-point formatting helper.
  static std::string fmt(double V, unsigned Decimals = 2);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace ssalive::bench

#endif // SSALIVE_BENCH_HARNESS_H
