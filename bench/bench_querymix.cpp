//===- bench/bench_querymix.cpp - Grouped vs arrival-order query path -----===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The locality-grouped query path against the per-query arrival-order path
// it replaced, on the batch driver's production (prepared) plane. The
// workload is a skewed query mix — the shape real clients send: one hot
// function receives most of the stream, values are drawn Zipf-ish so a few
// hot (high-use-count) values dominate, and blocks concentrate inside each
// def's dominance interval, where liveness is actually in question. Two
// driver configurations differing ONLY in GroupChunks run the identical
// stream:
//
//   arrival   GroupChunks=false: one prepared table read and one scan
//             kernel per query, in stream order — the pre-grouping
//             behavior, kept in the driver as the differential oracle.
//   grouped   GroupChunks=true: each chunk is sorted by (function, value)
//             and every run of same-value queries is answered through one
//             LiveCheck::answerPreparedRun call — one pass over the
//             dominance interval classifies the targets, then each probe
//             is a word-parallel range sweep (BitMatrix kernel dispatch).
//
// Single thread, static schedule: the ratio isolates the kernel
// amortization, which travels across machines; the work-stealing half of
// the query path is schedule-equivalence-tested (byte-identical answers)
// rather than gated here, because multi-core speedups depend on the
// runner's core count. Answers must be byte-identical across both configs
// and every pass; the run exits 1 otherwise. One untimed warm pass per
// config (steady-state prepared cache), then best-of timed passes. Emits
// BENCH_querymix.json with speedup_grouped_vs_arrival per tier — the ratio
// the CI trend gate tracks against the committed baseline, with a >= 1.15x
// target at the 1024-block tier.
//
//   bench_querymix [--smoke]   --smoke shrinks sizes/reps for CI.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/UseInfo.h"
#include "pipeline/AnalysisManager.h"
#include "pipeline/BatchLivenessDriver.h"
#include "ssa/SSAConstruction.h"
#include "workload/CFGGenerator.h"
#include "workload/ProgramGenerator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// One queryable value of one function, with the preorder interval its
/// queries concentrate in.
struct HotValue {
  std::uint32_t ValueId;
  unsigned Lo, Hi;   ///< Dominance preorder interval of the def.
  std::size_t Uses;  ///< Use count — the sort key for hotness.
};

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::vector<unsigned> Sizes =
      Smoke ? std::vector<unsigned>{32, 64}
            : std::vector<unsigned>{256, 1024, 2048};
  unsigned Reps = Smoke ? 2 : 5;
  constexpr unsigned FuncsPerModule = 4;
  constexpr unsigned QueriesPerBlock = 96;

  std::printf("Query-mix shootout: locality-grouped multi-query kernel vs "
              "arrival order\n(prepared plane, single thread, static "
              "schedule; skewed stream: hot function,\nZipf-ish hot values, "
              "interval-concentrated blocks; identical answers enforced;\n"
              "per config: one warm pass, best of %u timed passes)\n\n",
              Reps);

  TablePrinter Table({"Blocks", "Queries", "Config", "Mq/s", "Speedup"});
  std::vector<JsonRecord> Records;
  bool AnswersAgree = true;
  constexpr unsigned LargeTier = 1024;
  double LargeSpeedup = 0;
  std::vector<std::pair<unsigned, double>> SpeedupBySize;

  for (unsigned Blocks : Sizes) {
    RandomEngine Rng(Blocks * 7919ull + 3);

    // The module: FuncsPerModule random strict-SSA procedures of this
    // tier's size. Function 0 is the hot one below.
    std::vector<std::unique_ptr<Function>> Owned;
    std::vector<const Function *> Funcs;
    for (unsigned FI = 0; FI != FuncsPerModule; ++FI) {
      CFGGenOptions GOpts;
      GOpts.TargetBlocks = Blocks;
      CFG G0 = generateCFG(GOpts, Rng);
      ProgramGenOptions POpts;
      auto F = generateProgram(G0, POpts, Rng);
      constructSSA(*F);
      Owned.push_back(std::move(F));
      Funcs.push_back(Owned.back().get());
    }

    // Per function: the queryable values sorted hottest (most uses) first,
    // so the Zipf draw concentrates the stream on the values whose
    // interval scans cost the most — exactly where grouping amortizes.
    AnalysisManager AM;
    std::vector<std::vector<HotValue>> Hot(FuncsPerModule);
    for (unsigned FI = 0; FI != FuncsPerModule; ++FI) {
      const DomTree &DT = AM.domTree(*Funcs[FI]);
      for (const auto &V : Funcs[FI]->values()) {
        if (!V->hasSingleDef() || !V->hasUses())
          continue;
        unsigned Def = defBlockId(*V);
        Hot[FI].push_back(
            {V->id(), DT.num(Def), DT.maxnum(Def), V->uses().size()});
      }
      std::sort(Hot[FI].begin(), Hot[FI].end(),
                [](const HotValue &A, const HotValue &B) {
                  if (A.Uses != B.Uses)
                    return A.Uses > B.Uses;
                  return A.ValueId < B.ValueId;
                });
    }

    // The skewed stream: ~60% of queries hit function 0; the value rank is
    // cubed-uniform (Zipf-ish — rank 0 is drawn far more than rank k); the
    // block is 3-in-4 inside the def's dominance interval.
    const DomTree *Trees[FuncsPerModule];
    for (unsigned FI = 0; FI != FuncsPerModule; ++FI)
      Trees[FI] = &AM.domTree(*Funcs[FI]);
    std::vector<BatchQuery> Workload;
    std::size_t NumQueries = std::size_t(Blocks) * QueriesPerBlock;
    Workload.reserve(NumQueries);
    for (std::size_t I = 0; I != NumQueries; ++I) {
      unsigned FI = Rng.nextBelow(10) < 6
                        ? 0
                        : 1 + Rng.nextBelow(FuncsPerModule - 1);
      const std::vector<HotValue> &Vals = Hot[FI];
      double U = Rng.nextDouble();
      const HotValue &V =
          Vals[std::size_t(double(Vals.size()) * U * U * U)];
      std::uint32_t Block =
          (Rng.nextBelow(4) == 3 || V.Hi == V.Lo)
              ? Rng.nextBelow(Funcs[FI]->numBlocks())
              : Trees[FI]->nodeAtNum(Rng.nextInRange(V.Lo, V.Hi));
      Workload.push_back({FI, V.ValueId, Block, Rng.nextBelow(2) != 0});
    }

    // The two configurations, differing only in GroupChunks.
    BatchOptions Base;
    Base.Threads = 1;
    Base.Plane = QueryPlane::Prepared;
    Base.Schedule = BatchSchedule::Static;
    BatchOptions AOpts = Base, GOpts2 = Base;
    AOpts.GroupChunks = false;
    GOpts2.GroupChunks = true;
    BatchLivenessDriver Arrival(Funcs, AOpts);
    BatchLivenessDriver Grouped(Funcs, GOpts2);

    // Warm pass: populates the prepared caches and pins the reference
    // answers both configs (and every later pass) must reproduce.
    BatchResult Reference = Arrival.run(Workload);
    BatchResult GroupedWarm = Grouped.run(Workload);
    if (GroupedWarm.Answers != Reference.Answers) {
      std::printf("FAIL: grouped answers differ from arrival order at %u "
                  "blocks\n",
                  Blocks);
      AnswersAgree = false;
    }

    double ArrivalBest = 1e100, GroupedBest = 1e100;
    for (unsigned R = 0; R != Reps; ++R) {
      auto StartA = std::chrono::steady_clock::now();
      BatchResult RA = Arrival.run(Workload);
      ArrivalBest = std::min(ArrivalBest, secondsSince(StartA));
      auto StartG = std::chrono::steady_clock::now();
      BatchResult RG = Grouped.run(Workload);
      GroupedBest = std::min(GroupedBest, secondsSince(StartG));
      if (RA.Answers != Reference.Answers ||
          RG.Answers != Reference.Answers) {
        std::printf("FAIL: answers unstable across passes at %u blocks\n",
                    Blocks);
        AnswersAgree = false;
      }
    }

    double ArrivalQps = double(NumQueries) / ArrivalBest;
    double GroupedQps = double(NumQueries) / GroupedBest;
    double Speedup = GroupedQps / ArrivalQps;
    Table.addRow({std::to_string(Blocks), std::to_string(NumQueries),
                  "arrival", TablePrinter::fmt(ArrivalQps / 1e6),
                  TablePrinter::fmt(1.0)});
    Table.addRow({std::to_string(Blocks), std::to_string(NumQueries),
                  "grouped", TablePrinter::fmt(GroupedQps / 1e6),
                  TablePrinter::fmt(Speedup)});
    Records.push_back(
        JsonRecord()
            .num("blocks", std::uint64_t(Blocks))
            .num("queries", std::uint64_t(NumQueries))
            .num("arrival_queries_per_second", ArrivalQps)
            .num("grouped_queries_per_second", GroupedQps)
            .num("speedup_grouped_vs_arrival", Speedup));
    SpeedupBySize.push_back({Blocks, Speedup});
    if (Blocks == LargeTier)
      LargeSpeedup = Speedup;
  }

  Table.print();
  std::string JsonPath = writeBenchJson("querymix", Records);
  if (!JsonPath.empty())
    std::printf("\nMachine-readable results: %s\n", JsonPath.c_str());

  std::printf("\ngrouped vs arrival order:");
  for (auto [Blocks, S] : SpeedupBySize)
    std::printf(" %.2fx @ %u blocks;", S, Blocks);
  std::printf("\n");
  if (LargeSpeedup != 0)
    std::printf("large workload (%u blocks): %.2fx (target >= 1.15x) %s\n",
                LargeTier, LargeSpeedup,
                LargeSpeedup >= 1.15 ? "PASS" : "BELOW TARGET");
  std::printf("note: single-thread by design — the work-stealing scheduler "
              "adds multi-core\nthroughput on top of this ratio, but core-"
              "count-dependent speedups do not\ntravel across runners, so "
              "they are equivalence-tested rather than gated.\n");
  if (!AnswersAgree) {
    std::printf("FAIL: grouped and arrival-order answers disagree\n");
    return 1;
  }
  return 0;
}
