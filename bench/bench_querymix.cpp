//===- bench/bench_querymix.cpp - Query-volume sensitivity ----------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation D (DESIGN.md): the paper's combined speedup depends on the
// queries-per-variable ratio — 186.crafty regressed (0.73x) at 26.53
// queries/variable while the average workload (5.19 queries/variable) won.
// This bench makes the dependence explicit: on a fixed corpus it sweeps a
// multiplier on the query stream and reports where the "Both" speedup
// crosses 1.0. It also reports query cost as a function of def-use chain
// length (the for-loop of Algorithm 3).
//
// Note: since the prepared-cache migration, FunctionLiveness amortizes
// the per-value chain walk across the stream (core/PreparedCache), which
// shifts the break-even toward the "New" backend relative to the paper's
// walk-per-query model; bench_prepared measures that effect in isolation.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/FunctionLiveness.h"
#include "core/LiveCheck.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "liveness/DataflowLiveness.h"
#include "ssa/SSADestruction.h"
#include "support/CycleTimer.h"
#include "workload/CFGGenerator.h"

#include <cstdio>

using namespace ssalive;
using namespace ssalive::bench;

int main() {
  std::printf("Query-mix sensitivity: combined speedup vs queries issued\n");
  std::printf("(fixed 300-procedure corpus; the query trace is replayed K "
              "times to emulate\n passes with heavier query behaviour, as "
              "in the 186.crafty regression)\n\n");

  RandomEngine Rng(0xC0FFEE);
  const SpecProfile &P = spec2000Profiles()[0]; // 164.gzip shape.

  struct Proc {
    std::unique_ptr<Function> F;
    std::vector<RecordedQuery> Trace;
  };
  std::vector<Proc> Corpus;
  std::uint64_t BaseQueries = 0;
  std::uint64_t Variables = 0;
  for (unsigned I = 0; I != 300; ++I) {
    Proc Pr;
    Pr.F = synthesizeProcedure(P, Rng);
    auto Clone = cloneFunction(*Pr.F);
    FunctionLiveness Live(*Clone);
    DestructionOptions DOpts;
    DOpts.RecordTrace = true;
    Pr.Trace = destructSSA(*Clone, Live, DOpts).Trace;
    BaseQueries += Pr.Trace.size();
    Variables += Pr.F->numValues();
    Corpus.push_back(std::move(Pr));
  }

  TablePrinter T({"Multiplier", "Queries/var", "Pre.Native", "Pre.New",
                  "Q.Native", "Q.New", "Both spdup"});

  for (unsigned K : {1u, 2u, 4u, 8u, 16u, 32u}) {
    std::uint64_t NativePre = 0, NewPre = 0, NativeQ = 0, NewQ = 0;
    std::uint64_t Queries = 0;
    unsigned Checksum = 0;
    for (const Proc &Pr : Corpus) {
      CycleTimer TN;
      TN.start();
      DataflowOptions NOpts;
      NOpts.PhiRelatedOnly = true;
      DataflowLiveness Native(*Pr.F, NOpts);
      TN.stop();
      NativePre += TN.totalCycles();

      CFG G = CFG::fromFunction(*Pr.F);
      DFS D(G);
      DomTree DT(G, D);
      CycleTimer TP;
      TP.start();
      LiveCheck Engine(G, D, DT);
      TP.stop();
      NewPre += TP.totalCycles();

      FunctionLiveness NewBackend(*Pr.F);
      CycleTimer TQN, TQF;
      for (unsigned Rep = 0; Rep != K; ++Rep) {
        TQN.start();
        for (const RecordedQuery &Q : Pr.Trace) {
          bool A = Q.IsLiveOut
                       ? Native.isLiveOut(*Pr.F->value(Q.ValueId),
                                          *Pr.F->block(Q.BlockId))
                       : Native.isLiveIn(*Pr.F->value(Q.ValueId),
                                         *Pr.F->block(Q.BlockId));
          Checksum ^= unsigned(A);
        }
        TQN.stop();
        TQF.start();
        for (const RecordedQuery &Q : Pr.Trace) {
          bool A = Q.IsLiveOut
                       ? NewBackend.isLiveOut(*Pr.F->value(Q.ValueId),
                                              *Pr.F->block(Q.BlockId))
                       : NewBackend.isLiveIn(*Pr.F->value(Q.ValueId),
                                             *Pr.F->block(Q.BlockId));
          Checksum ^= unsigned(A);
        }
        TQF.stop();
      }
      NativeQ += TQN.totalCycles();
      NewQ += TQF.totalCycles();
      Queries += K * Pr.Trace.size();
    }
    (void)Checksum;
    double PreN = double(NativePre) / Corpus.size();
    double PreF = double(NewPre) / Corpus.size();
    double QN = double(NativeQ) / double(Queries);
    double QF = double(NewQ) / double(Queries);
    double Both = (Corpus.size() * PreN + double(Queries) * QN) /
                  (Corpus.size() * PreF + double(Queries) * QF);
    T.addRow({std::to_string(K),
              TablePrinter::fmt(double(Queries) / double(Variables)),
              TablePrinter::fmt(PreN, 0), TablePrinter::fmt(PreF, 0),
              TablePrinter::fmt(QN), TablePrinter::fmt(QF),
              TablePrinter::fmt(Both)});
  }
  T.print();
  std::printf("\nPaper reference points: 5.19 queries/variable -> 1.16x "
              "combined; 26.53\nqueries/variable (186.crafty) -> 0.73x. The "
              "crossover moves with the ratio of\nprecompute savings to "
              "per-query penalty.\n");

  // Query cost vs def-use chain length (Algorithm 3's inner loop).
  std::printf("\nQuery cost vs def-use chain length (live-in, synthetic "
              "chains):\n\n");
  TablePrinter T2({"Uses", "Cycles/query"});
  for (unsigned Uses : {1u, 2u, 4u, 8u, 16u, 64u}) {
    RandomEngine R2(Uses);
    CFGGenOptions GOpts;
    GOpts.TargetBlocks = 40;
    CFG G = generateCFG(GOpts, R2);
    DFS D(G);
    DomTree DT(G, D);
    LiveCheck Engine(G, D, DT);
    // One variable defined at the entry, used in 'Uses' random blocks.
    std::vector<unsigned> UseBlocks;
    for (unsigned I = 0; I != Uses; ++I)
      UseBlocks.push_back(R2.nextBelow(G.numNodes()));
    CycleTimer Timer;
    unsigned Checksum = 0;
    constexpr unsigned Reps = 20000;
    Timer.start();
    for (unsigned I = 0; I != Reps; ++I) {
      unsigned Q = I % G.numNodes();
      Checksum ^= unsigned(Engine.isLiveIn(G.entry(), Q, UseBlocks));
    }
    Timer.stop();
    (void)Checksum;
    T2.addRow({std::to_string(Uses),
               TablePrinter::fmt(double(Timer.totalCycles()) / Reps)});
  }
  T2.print();
  return 0;
}
