//===- bench/bench_ablation.cpp - Design-choice ablations ------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablations A and B (DESIGN.md):
//   A. Section 4.1 / 5.1 query optimizations: dominance-ordered scanning
//      with subtree skipping, and the reducible single-test fast path
//      (Theorem 2).
//   B. Section 5.2 T-set computation: the practical propagated scheme vs
//      exact Definition 5 sets at every node.
//
// Each variant answers the identical query stream; we report precompute
// cycles, query cycles, and the engine's internal scan counters.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/LiveCheck.h"
#include "core/UseInfo.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "core/FunctionLiveness.h"
#include "ssa/SSADestruction.h"
#include "support/CycleTimer.h"

#include <cstdio>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

struct Variant {
  const char *Name;
  LiveCheckOptions Opts;
};

struct Workload {
  std::unique_ptr<Function> F;
  std::vector<RecordedQuery> Trace;
};

Workload makeWorkload(const SpecProfile &P, RandomEngine &Rng) {
  Workload W;
  W.F = synthesizeProcedure(P, Rng);
  auto Clone = cloneFunction(*W.F);
  FunctionLiveness Live(*Clone);
  DestructionOptions Opts;
  Opts.RecordTrace = true;
  W.Trace = destructSSA(*Clone, Live, Opts).Trace;
  return W;
}

} // namespace

int main() {
  const Variant Variants[] = {
      {"propagated+skip",
       {TMode::Propagated, true, true, TStorage::Bitset}},
      {"propagated-noskip",
       {TMode::Propagated, false, false, TStorage::Bitset}},
      {"filtered+fastpath",
       {TMode::Filtered, true, true, TStorage::Bitset}},
      {"filtered-nofast",
       {TMode::Filtered, true, false, TStorage::Bitset}},
      {"propagated+sorted-T",
       {TMode::Propagated, true, true, TStorage::SortedArray}},
      {"filtered+sorted-T",
       {TMode::Filtered, true, true, TStorage::SortedArray}},
      {"propagated+arena",
       {TMode::Propagated, true, true, TStorage::Arena}},
      {"filtered+arena",
       {TMode::Filtered, true, true, TStorage::Arena}},
  };

  std::printf("Ablation: T-set computation modes and query-scan "
              "optimizations\n(identical SSA-destruction query stream over "
              "a 176.gcc-profile corpus)\n\n");

  // Build a corpus of workloads once.
  RandomEngine Rng(0xAB1A7E);
  const SpecProfile &P = spec2000Profiles()[2]; // 176.gcc shape.
  std::vector<Workload> Corpus;
  std::uint64_t TotalQueries = 0;
  for (unsigned I = 0; I != 300; ++I) {
    Corpus.push_back(makeWorkload(P, Rng));
    TotalQueries += Corpus.back().Trace.size();
  }

  TablePrinter T({"Variant", "Pre(cyc/proc)", "Query(cyc)",
                  "Targets/query", "UseTests/query", "Checksum"});

  for (const Variant &V : Variants) {
    std::uint64_t PreCycles = 0, QueryCycles = 0;
    std::uint64_t Targets = 0, UseTests = 0;
    unsigned Checksum = 0;
    for (const Workload &W : Corpus) {
      CFG G = CFG::fromFunction(*W.F);
      DFS D(G);
      DomTree DT(G, D);
      CycleTimer Pre;
      Pre.start();
      LiveCheck Engine(G, D, DT, V.Opts);
      Pre.stop();
      PreCycles += Pre.totalCycles();

      std::vector<unsigned> Uses;
      LiveCheckStats Stats;
      CycleTimer Q;
      Q.start();
      for (const RecordedQuery &RQ : W.Trace) {
        const Value &Val = *W.F->value(RQ.ValueId);
        Uses.clear();
        appendLiveUseBlocks(Val, Uses);
        bool Answer =
            RQ.IsLiveOut
                ? Engine.isLiveOut(defBlockId(Val), RQ.BlockId, Uses, &Stats)
                : Engine.isLiveIn(defBlockId(Val), RQ.BlockId, Uses, &Stats);
        Checksum = (Checksum << 1) ^ unsigned(Answer) ^ (Checksum >> 19);
      }
      Q.stop();
      QueryCycles += Q.totalCycles();
      Targets += Stats.TargetsVisited;
      UseTests += Stats.UseTests;
    }
    T.addRow({V.Name, TablePrinter::fmt(double(PreCycles) / Corpus.size(), 0),
              TablePrinter::fmt(double(QueryCycles) / double(TotalQueries)),
              TablePrinter::fmt(double(Targets) / double(TotalQueries)),
              TablePrinter::fmt(double(UseTests) / double(TotalQueries)),
              std::to_string(Checksum)});
  }
  T.print();
  std::printf("\n%llu queries over %zu procedures. Checksums must agree "
              "across variants\n(all four compute the same function).\n",
              static_cast<unsigned long long>(TotalQueries), Corpus.size());
  return 0;
}
