//===- bench/bench_server.cpp - Liveness server throughput/latency --------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the liveness query server end to end over the pipe transport
// (the same byte stream ssalive-server --stdio speaks): an in-process
// LivenessServer serves one session across a pipe pair while the main
// thread plays client, so the numbers include framing, syscalls, and the
// shared-pool query fan-out — the full cost of a remote query, not just
// the engine scan. A final section repeats the warm 4096-batch pass over
// TCP loopback (the network transport) and records speedup_tcp_vs_pipe.
//
//   bench_server [--smoke] [--threads=N]
//
// Reports, per batch size (1 / 64 / 4096 queries per frame):
//   * warm throughput (queries/s) after the precompute is resident,
//   * p50/p99 round-trip latency for single-query frames,
//   * the batch-amortization ratios (speedup_batch_vs_unit / _vs_64) —
//     machine-portable ratios the CI trend gate tracks, unlike raw q/s.
//
// Emits BENCH_server.json. The acceptance floor of the server PR: warm
// pipe throughput >= 1M queries/s at the 4096 batch size on the 1-core
// dev container.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "pipeline/BatchLivenessDriver.h"
#include "server/LivenessServer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace ssalive;
using namespace ssalive::bench;
namespace proto = ssalive::protocol;

namespace {

double nowMillis() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

bool roundTrip(int OutFd, int InFd, const std::vector<std::uint8_t> &Req,
               std::vector<std::uint8_t> &Reply) {
  return proto::roundTrip(InFd, OutFd, Req, Reply);
}

int connectLoopback(std::uint16_t Port) {
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  ::inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  unsigned Threads = 1;
  for (int I = 1; I != Argc; ++I) {
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;
    else if (std::strncmp(Argv[I], "--threads=", 10) == 0)
      Threads = static_cast<unsigned>(std::strtoul(Argv[I] + 10, nullptr,
                                                   10));
  }

  // ---- Corpus: SPEC-profile procedures (176.gcc row), shipped as text.
  RandomEngine Rng(0xbe9cull);
  const SpecProfile &P = spec2000Profiles()[2];
  unsigned NumFuncs = Smoke ? 8 : 16;
  std::string Text;
  for (unsigned I = 0; I != NumFuncs; ++I)
    Text += printFunction(*synthesizeProcedure(P, Rng)) + "\n";
  ModuleParseResult Parsed = parseModule(Text);
  if (!Parsed.Error.empty()) {
    std::fprintf(stderr, "corpus does not parse: %s\n",
                 Parsed.Error.c_str());
    return 1;
  }
  std::vector<const Function *> Funcs;
  for (const auto &F : Parsed.Funcs)
    Funcs.push_back(F.get());

  // ---- Server over a pipe pair.
  server::ServerConfig Cfg;
  Cfg.Threads = Threads;
  server::LivenessServer Server(Cfg);
  int ToServer[2], FromServer[2];
  if (::pipe(ToServer) != 0 || ::pipe(FromServer) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::thread ServerThread([&] {
    Server.serveStream(ToServer[0], FromServer[1]);
    ::close(ToServer[0]);
    ::close(FromServer[1]);
  });
  int OutFd = ToServer[1], InFd = FromServer[0];

  std::vector<std::uint8_t> Reply;
  if (!roundTrip(OutFd, InFd,
                 proto::encodeLoadModule(
                     static_cast<std::uint8_t>(
                         BatchBackend::LiveCheckPropagated),
                     static_cast<std::uint8_t>(QueryPlane::BlockId), Text),
                 Reply) ||
      Reply.empty() ||
      Reply[0] != static_cast<std::uint8_t>(proto::Opcode::ModuleLoaded)) {
    std::fprintf(stderr, "load-module failed\n");
    return 1;
  }

  std::size_t WarmQueries = Smoke ? 40000 : 400000;
  std::vector<BatchQuery> Workload =
      BatchLivenessDriver::generateWorkload(Funcs, 42, WarmQueries);

  auto sendSpan = [&](std::size_t Begin, std::size_t End) {
    std::vector<proto::QueryItem> Items;
    Items.reserve(End - Begin);
    for (std::size_t I = Begin; I != End; ++I)
      Items.push_back({Workload[I].FuncIndex, Workload[I].ValueId,
                       Workload[I].BlockId, Workload[I].IsLiveOut});
    return proto::encodeQueryBatch(Items);
  };

  // Cold pass primes the per-function precomputation; everything after
  // runs in the amortized regime the server exists for.
  if (!roundTrip(OutFd, InFd, sendSpan(0, std::min<std::size_t>(
                                              Workload.size(), 4096)),
                 Reply)) {
    std::fprintf(stderr, "warm-up batch failed\n");
    return 1;
  }

  std::printf("bench_server: %u functions, %zu warm queries/pass, "
              "%u pool thread(s), pipe transport\n",
              NumFuncs, Workload.size(), Threads);

  TablePrinter Table({"batch", "passes", "queries/s", "p50 us", "p99 us"});
  std::vector<JsonRecord> Records;
  double QpsUnit = 0, Qps64 = 0, Qps4096 = 0;

  for (std::size_t Batch : {std::size_t(1), std::size_t(64),
                            std::size_t(4096)}) {
    // Latency sampling only makes sense per frame; cap the unit-batch
    // pass so the bench stays quick.
    std::size_t Total = Batch == 1 ? std::min<std::size_t>(Workload.size(),
                                                           Smoke ? 2000
                                                                 : 20000)
                                   : Workload.size();
    unsigned Passes = Smoke ? 2 : 3;
    double BestMillis = 0;
    std::vector<double> LatenciesUs;
    for (unsigned Pass = 0; Pass != Passes; ++Pass) {
      double PassStart = nowMillis();
      for (std::size_t Begin = 0; Begin < Total; Begin += Batch) {
        std::size_t End = std::min(Total, Begin + Batch);
        auto Req = sendSpan(Begin, End);
        double T0 = Batch == 1 ? nowMillis() : 0;
        if (!roundTrip(OutFd, InFd, Req, Reply)) {
          std::fprintf(stderr, "query batch failed\n");
          return 1;
        }
        if (Batch == 1 && Pass + 1 == Passes)
          LatenciesUs.push_back((nowMillis() - T0) * 1e3);
      }
      double PassMillis = nowMillis() - PassStart;
      if (Pass == 0 || PassMillis < BestMillis)
        BestMillis = PassMillis;
    }
    double Qps = double(Total) / (BestMillis / 1e3);
    double P50 = 0, P99 = 0;
    if (!LatenciesUs.empty()) {
      std::sort(LatenciesUs.begin(), LatenciesUs.end());
      P50 = LatenciesUs[LatenciesUs.size() / 2];
      P99 = LatenciesUs[LatenciesUs.size() * 99 / 100];
    }
    if (Batch == 1)
      QpsUnit = Qps;
    else if (Batch == 64)
      Qps64 = Qps;
    else
      Qps4096 = Qps;

    Table.addRow({std::to_string(Batch), std::to_string(Passes),
                  TablePrinter::fmt(Qps, 0),
                  Batch == 1 ? TablePrinter::fmt(P50, 1) : "-",
                  Batch == 1 ? TablePrinter::fmt(P99, 1) : "-"});
    JsonRecord R;
    R.str("transport", "pipe").num("batch", std::uint64_t(Batch));
    R.num("queries_per_second", Qps);
    if (Batch == 1)
      R.num("p50_us", P50).num("p99_us", P99);
    Records.push_back(std::move(R));
  }

  // Machine-portable ratios for the CI trend gate: how much the batched
  // frames amortize the per-frame syscall/framing cost.
  {
    JsonRecord R;
    R.str("metric", "amortization");
    R.num("warm_pipe_queries_per_second", Qps4096);
    // Informational only — dominated by raw syscall latency, which does
    // not travel across machines (the "ratio_" prefix keeps it out of
    // the /speedup/ trend gate).
    R.num("ratio_batch_vs_unit", QpsUnit > 0 ? Qps4096 / QpsUnit : 0);
    R.num("speedup_batch_vs_64", Qps64 > 0 ? Qps4096 / Qps64 : 0);
    Records.push_back(std::move(R));
  }

  // ---- Server-side prepared cache: reload the same module on the cached
  // prepared plane (the session default in production) and measure the
  // warm 4096-batch throughput. After the first pass every workload
  // value's PreparedVar is resident in the session's cache, so the warm
  // figure is the steady-state regime of a long-lived connection: no
  // per-query chain walk or renumbering at all.
  double QpsPrepared = 0;
  {
    if (!roundTrip(OutFd, InFd,
                   proto::encodeLoadModule(
                       static_cast<std::uint8_t>(
                           BatchBackend::LiveCheckPropagated),
                       static_cast<std::uint8_t>(QueryPlane::Prepared),
                       Text),
                   Reply) ||
        Reply.empty() ||
        Reply[0] !=
            static_cast<std::uint8_t>(proto::Opcode::ModuleLoaded)) {
      std::fprintf(stderr, "prepared-plane reload failed\n");
      return 1;
    }
    unsigned Passes = Smoke ? 3 : 4; // First pass is the cache-fill warm-up.
    double BestMillis = 0;
    bool Timed = false;
    for (unsigned Pass = 0; Pass != Passes; ++Pass) {
      double PassStart = nowMillis();
      for (std::size_t Begin = 0; Begin < Workload.size(); Begin += 4096) {
        std::size_t End = std::min(Workload.size(), Begin + 4096);
        if (!roundTrip(OutFd, InFd, sendSpan(Begin, End), Reply)) {
          std::fprintf(stderr, "prepared-plane batch failed\n");
          return 1;
        }
      }
      double PassMillis = nowMillis() - PassStart;
      if (Pass == 0)
        continue; // Cache fill.
      if (!Timed || PassMillis < BestMillis) {
        BestMillis = PassMillis;
        Timed = true;
      }
    }
    QpsPrepared = double(Workload.size()) / (BestMillis / 1e3);
    JsonRecord R;
    R.str("metric", "prepared_cache");
    R.num("warm_prepared_queries_per_second", QpsPrepared);
    R.num("speedup_prepared_vs_blockid",
          Qps4096 > 0 ? QpsPrepared / Qps4096 : 0);
    Records.push_back(std::move(R));
  }

  // ---- TCP loopback: the same warm 4096-batch pass over the network
  // transport (accept loop + TCP_NODELAY stream instead of a raw pipe),
  // against a second in-process server. speedup_tcp_vs_pipe is the
  // trend-gated ratio: it tracks the framing/syscall overhead the TCP
  // path adds, not the machine's absolute socket speed.
  double QpsTcp = 0;
  {
    server::LivenessServer TcpServer(Cfg);
    std::string Err;
    int TcpFd = -1;
    if (!TcpServer.listenTcp("127.0.0.1", /*Port=*/0, Err)) {
      std::fprintf(stderr, "listenTcp failed: %s\n", Err.c_str());
      return 1;
    }
    TcpServer.start();
    TcpFd = connectLoopback(TcpServer.boundTcpPort());
    if (TcpFd < 0) {
      std::fprintf(stderr, "tcp connect failed\n");
      return 1;
    }
    if (!roundTrip(TcpFd, TcpFd,
                   proto::encodeLoadModule(
                       static_cast<std::uint8_t>(
                           BatchBackend::LiveCheckPropagated),
                       static_cast<std::uint8_t>(QueryPlane::BlockId),
                       Text),
                   Reply) ||
        Reply.empty() ||
        Reply[0] !=
            static_cast<std::uint8_t>(proto::Opcode::ModuleLoaded)) {
      std::fprintf(stderr, "tcp load-module failed\n");
      return 1;
    }
    unsigned Passes = Smoke ? 3 : 4; // First pass primes the precompute.
    double BestMillis = 0;
    bool Timed = false;
    for (unsigned Pass = 0; Pass != Passes; ++Pass) {
      double PassStart = nowMillis();
      for (std::size_t Begin = 0; Begin < Workload.size(); Begin += 4096) {
        std::size_t End = std::min(Workload.size(), Begin + 4096);
        if (!roundTrip(TcpFd, TcpFd, sendSpan(Begin, End), Reply)) {
          std::fprintf(stderr, "tcp query batch failed\n");
          return 1;
        }
      }
      double PassMillis = nowMillis() - PassStart;
      if (Pass == 0)
        continue; // Warm-up.
      if (!Timed || PassMillis < BestMillis) {
        BestMillis = PassMillis;
        Timed = true;
      }
    }
    QpsTcp = double(Workload.size()) / (BestMillis / 1e3);
    (void)roundTrip(TcpFd, TcpFd, proto::encodeShutdown(), Reply);
    ::close(TcpFd);
    TcpServer.wait();
    JsonRecord R;
    R.str("transport", "tcp").num("batch", std::uint64_t(4096));
    R.num("queries_per_second", QpsTcp);
    R.num("speedup_tcp_vs_pipe", Qps4096 > 0 ? QpsTcp / Qps4096 : 0);
    Records.push_back(std::move(R));
  }

  Table.print();
  std::printf("warm tcp-loopback throughput (batch 4096): %.0f queries/s "
              "(%.2fx vs pipe)\n",
              QpsTcp, Qps4096 > 0 ? QpsTcp / Qps4096 : 0);
  std::printf("warm pipe throughput (batch 4096): %.0f queries/s %s\n",
              Qps4096, Qps4096 >= 1e6 ? "(>= 1M target PASS)"
                                      : "(below the 1M target)");
  std::printf("warm prepared-cache throughput (batch 4096): %.0f queries/s "
              "(%.2fx vs block-id plane)\n",
              QpsPrepared, Qps4096 > 0 ? QpsPrepared / Qps4096 : 0);

  std::string Path = writeBenchJson("server", Records);
  if (!Path.empty())
    std::printf("wrote %s\n", Path.c_str());

  (void)roundTrip(OutFd, InFd, proto::encodeShutdown(), Reply);
  ::close(OutFd);
  ::close(InFd);
  ServerThread.join();
  return 0;
}
