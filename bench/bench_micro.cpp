//===- bench/bench_micro.cpp - Component microbenchmarks ------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the individual components: DFS,
// dominator tree, the R/T precomputation (both T modes), single queries on
// both backends, and the data-flow solve. These are the per-component
// numbers behind the Table 2 aggregates.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/FunctionLiveness.h"
#include "core/LiveCheck.h"
#include "ir/CFG.h"
#include "ir/Clone.h"
#include "liveness/DataflowLiveness.h"
#include "ssa/SSADestruction.h"
#include "workload/CFGGenerator.h"

#include <benchmark/benchmark.h>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

/// A fixed procedure of roughly the paper's average shape (~36 blocks)
/// with a non-trivial φ/query workload, shared by the single-procedure
/// microbenchmarks. The block-count sampler is heavy-tailed, so candidate
/// seeds are drawn until one lands in the representative band.
const Function &averageProcedure() {
  static std::unique_ptr<Function> F = [] {
    for (std::uint64_t Seed = 42;; ++Seed) {
      RandomEngine Rng(Seed);
      auto Candidate = synthesizeProcedure(spec2000Profiles()[2], Rng);
      if (Candidate->numBlocks() < 30 || Candidate->numBlocks() > 48)
        continue;
      auto Clone = cloneFunction(*Candidate);
      FunctionLiveness Live(*Clone);
      DestructionOptions Opts;
      Opts.RecordTrace = true;
      if (destructSSA(*Clone, Live, Opts).Trace.size() >= 50)
        return Candidate;
    }
  }();
  return *F;
}

/// The SSA-destruction query trace for averageProcedure().
const std::vector<RecordedQuery> &averageTrace() {
  static std::vector<RecordedQuery> Trace = [] {
    auto Clone = cloneFunction(averageProcedure());
    FunctionLiveness Live(*Clone);
    DestructionOptions Opts;
    Opts.RecordTrace = true;
    return destructSSA(*Clone, Live, Opts).Trace;
  }();
  return Trace;
}

void BM_DFS(benchmark::State &State) {
  CFG G = CFG::fromFunction(averageProcedure());
  for (auto _ : State) {
    DFS D(G);
    benchmark::DoNotOptimize(D.backEdges().size());
  }
}
BENCHMARK(BM_DFS);

void BM_DomTree(benchmark::State &State) {
  CFG G = CFG::fromFunction(averageProcedure());
  DFS D(G);
  for (auto _ : State) {
    DomTree DT(G, D);
    benchmark::DoNotOptimize(DT.maxnum(0));
  }
}
BENCHMARK(BM_DomTree);

void BM_PrecomputePropagated(benchmark::State &State) {
  CFG G = CFG::fromFunction(averageProcedure());
  DFS D(G);
  DomTree DT(G, D);
  for (auto _ : State) {
    LiveCheck Engine(G, D, DT, {TMode::Propagated, true, true});
    benchmark::DoNotOptimize(Engine.memoryBytes());
  }
}
BENCHMARK(BM_PrecomputePropagated);

void BM_PrecomputeFiltered(benchmark::State &State) {
  CFG G = CFG::fromFunction(averageProcedure());
  DFS D(G);
  DomTree DT(G, D);
  for (auto _ : State) {
    LiveCheck Engine(G, D, DT, {TMode::Filtered, true, true});
    benchmark::DoNotOptimize(Engine.memoryBytes());
  }
}
BENCHMARK(BM_PrecomputeFiltered);

void BM_PrecomputeDataflowPhiOnly(benchmark::State &State) {
  const Function &F = averageProcedure();
  DataflowOptions Opts;
  Opts.PhiRelatedOnly = true;
  for (auto _ : State) {
    DataflowLiveness Native(F, Opts);
    benchmark::DoNotOptimize(Native.universeSize());
  }
}
BENCHMARK(BM_PrecomputeDataflowPhiOnly);

void BM_PrecomputeDataflowFull(benchmark::State &State) {
  const Function &F = averageProcedure();
  for (auto _ : State) {
    DataflowLiveness Native(F);
    benchmark::DoNotOptimize(Native.universeSize());
  }
}
BENCHMARK(BM_PrecomputeDataflowFull);

void BM_QueryLiveCheck(benchmark::State &State) {
  const Function &F = averageProcedure();
  const auto &Trace = averageTrace();
  FunctionLiveness Live(F);
  size_t I = 0;
  for (auto _ : State) {
    const RecordedQuery &Q = Trace[I++ % Trace.size()];
    bool A = Q.IsLiveOut
                 ? Live.isLiveOut(*F.value(Q.ValueId), *F.block(Q.BlockId))
                 : Live.isLiveIn(*F.value(Q.ValueId), *F.block(Q.BlockId));
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_QueryLiveCheck);

void BM_QueryDataflowLookup(benchmark::State &State) {
  const Function &F = averageProcedure();
  const auto &Trace = averageTrace();
  DataflowOptions Opts;
  Opts.PhiRelatedOnly = true;
  DataflowLiveness Native(F, Opts);
  size_t I = 0;
  for (auto _ : State) {
    const RecordedQuery &Q = Trace[I++ % Trace.size()];
    bool A = Q.IsLiveOut
                 ? Native.isLiveOut(*F.value(Q.ValueId), *F.block(Q.BlockId))
                 : Native.isLiveIn(*F.value(Q.ValueId), *F.block(Q.BlockId));
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_QueryDataflowLookup);

void BM_DestructionPass(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    auto Clone = cloneFunction(averageProcedure());
    FunctionLiveness Live(*Clone);
    State.ResumeTiming();
    DestructionStats Stats = destructSSA(*Clone, Live);
    benchmark::DoNotOptimize(Stats.CopiesInserted);
  }
}
BENCHMARK(BM_DestructionPass);

/// Precomputation across sizes, to read the quadratic slope directly.
void BM_PrecomputeBySize(benchmark::State &State) {
  RandomEngine Rng(State.range(0));
  CFGGenOptions GOpts;
  GOpts.TargetBlocks = static_cast<unsigned>(State.range(0));
  CFG G = generateCFG(GOpts, Rng);
  DFS D(G);
  DomTree DT(G, D);
  for (auto _ : State) {
    LiveCheck Engine(G, D, DT);
    benchmark::DoNotOptimize(Engine.memoryBytes());
  }
  State.SetComplexityN(G.numNodes());
}
BENCHMARK(BM_PrecomputeBySize)->Range(8, 2048)->Complexity();

} // namespace
