//===- bench/bench_incremental.cpp - refresh vs rebuild per CFG edit ------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the incremental analysis plane: after one structural CFG edit
// (edge insert / edge remove / branch retarget — the single-edge edits a
// compiler pass makes between queries), how much cheaper is
// AnalysisManager::refresh — delta-journal replay into DFS::recompute, the
// scoped DomTree repair, and LiveCheck's R/T row repatch — than the
// from-scratch rebuild the cache used to do on every epoch bump?
//
// Protocol: one SPEC-shaped strict-SSA procedure per tier (the paper's
// 256/1024/2048-block sizes), a stream of single-edge edits, and for every
// edit both paths are timed on the same mutation: the refresh manager
// repairs its cached stack in place, the rebuild manager is invalidated
// and rebuilt. Answers from both engines are folded into checksums that
// must match bit for bit — a mismatch aborts the bench. Medians are
// reported per tier; acceptance is refresh >= 5x cheaper at 1024 blocks.
//
// Emits BENCH_incremental.json next to the binary.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "core/LiveCheck.h"
#include "core/UseInfo.h"
#include "pipeline/AnalysisManager.h"
#include "ssa/SSAConstruction.h"
#include "support/RandomEngine.h"
#include "workload/CFGGenerator.h"
#include "workload/CFGMutator.h"
#include "workload/ProgramGenerator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

using namespace ssalive;
using namespace ssalive::bench;

namespace {

double medianUs(std::vector<double> &V) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  return V[V.size() / 2];
}

/// Folds a spread of liveness answers from \p LC into a checksum; both
/// managers' engines must produce identical streams.
std::uint64_t answerChecksum(const LiveCheck &LC, const Function &F,
                             RandomEngine &Rng) {
  std::uint64_t Sum = 0xcbf29ce484222325ull;
  unsigned N = LC.numNodes();
  BitVector In, Out;
  unsigned Sampled = 0;
  for (const auto &V : F.values()) {
    if (V->defs().size() != 1)
      continue;
    std::vector<unsigned> Uses = liveUseBlocks(*V);
    if (Uses.empty())
      continue;
    unsigned Def = defBlockId(*V);
    LC.liveInOutBlocks(Def, Uses, In, Out);
    for (unsigned B = In.findFirstSet(); B != BitVector::npos;
         B = In.findNextSet(B + 1))
      Sum = (Sum ^ (std::uint64_t(Def) * 131 + B)) * 0x100000001b3ull;
    for (unsigned B = Out.findFirstSet(); B != BitVector::npos;
         B = Out.findNextSet(B + 1))
      Sum = (Sum ^ (std::uint64_t(Def) * 137 + B + N)) * 0x100000001b3ull;
    if (++Sampled == 48)
      break;
  }
  (void)Rng;
  return Sum;
}

struct TierResult {
  unsigned Blocks = 0;
  unsigned Edits = 0;
  double RefreshUs = 0;
  double RebuildUs = 0;
  double Speedup = 0;
  /// The loop-edit class: edits the dominator plane proved no-ops (back
  /// edges toggled into dominators — loop creation/deletion), the bread
  /// and butter of the paper's JIT setting and the acceptance metric.
  unsigned LoopEdits = 0;
  double LoopRefreshUs = 0;
  double LoopRebuildUs = 0;
  double LoopSpeedup = 0;
  /// Everything else: dominance-changing branch rewires.
  double StructRefreshUs = 0;
  double StructRebuildUs = 0;
  std::uint64_t ScopedRepairs = 0;
  std::uint64_t DomFullRebuilds = 0;
  std::uint64_t EngineRepatches = 0;
  std::uint64_t EngineRecomputes = 0;
};

TierResult runTier(unsigned Blocks, unsigned Edits, unsigned Reps,
                   bool &AnswersAgree) {
  using Clock = std::chrono::steady_clock;
  // Per-edit minima across identical replayed passes — the interleaved
  // best-of protocol bench_storage established for this noisy 1-core
  // container, adapted to a stateful edit stream: the whole deterministic
  // edit sequence is replayed from scratch each pass.
  std::vector<double> RefreshBest, RebuildBest;
  std::vector<bool> IsLoopEdit;
  TierResult R;
  R.Blocks = Blocks;

  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    RandomEngine Rng(Blocks * 7717ull + 19);
    CFGGenOptions GOpts;
    GOpts.TargetBlocks = Blocks;
    CFG G0 = generateCFG(GOpts, Rng);
    ProgramGenOptions POpts;
    auto F = generateProgram(G0, POpts, Rng);
    constructSSA(*F);

    AnalysisManager RefreshAM; // Repairs in place via the delta journal.
    AnalysisManager RebuildAM; // Invalidated every edit: the old way.
    (void)RefreshAM.get(*F).liveCheck();
    (void)RebuildAM.get(*F).liveCheck();

    // Single-edge edits only (splits change the node count and are the
    // plane's designed rebuild case), drawn as the localized,
    // reducibility-preserving rewiring a transform pass makes: loop
    // back-edge toggles and short-range retargets/branch edits. The fuzz
    // suite is where the adversarial global edits live; this bench
    // measures the regime the incremental plane is built for.
    CFGMutatorOptions MOpts;
    MOpts.AddEdgePercent = 40;
    MOpts.RemoveEdgePercent = 30;
    MOpts.RetargetPercent = 30;
    MOpts.PreserveReducibility = true;
    MOpts.LocalityWindow = 12;

    RandomEngine QRng(Blocks + 5);
    FunctionAnalyses *RefreshFA = &RefreshAM.get(*F);
    const LiveCheck *PrevRefreshLC = &RefreshFA->liveCheck();
    const LiveCheck *PrevRebuildLC = &RebuildAM.get(*F).liveCheck();
    unsigned Measured = 0;
    for (unsigned Edit = 0; Edit != Edits; ++Edit) {
      if (!mutateFunctionCFG(*F, Rng, MOpts))
        continue;

      // The regime under measurement is a resident engine serving query
      // traffic between edits; the mutator's untimed scratch analyses
      // would otherwise evict both engines and time cold misses instead
      // of the repair itself. Touching each engine's (momentarily stale)
      // precomputation stands in for that traffic, symmetrically.
      (void)answerChecksum(*PrevRefreshLC, *F, QRng);
      // Stats are read off the live cache entry, never through get():
      // a stale-epoch get() would rebuild the entry and void the
      // measurement.
      std::uint64_t ShortcutsBefore =
          RefreshFA->domTree().updateStats().NoChangeShortcuts;
      auto T0 = Clock::now();
      FunctionAnalyses &FA = RefreshAM.refresh(*F);
      const LiveCheck &RefreshedLC = FA.liveCheck();
      auto T1 = Clock::now();
      RefreshFA = &FA;
      bool LoopEdit =
          RefreshFA->domTree().updateStats().NoChangeShortcuts !=
          ShortcutsBefore;

      (void)answerChecksum(*PrevRebuildLC, *F, QRng);
      RebuildAM.invalidate(*F);
      auto T2 = Clock::now();
      const LiveCheck &RebuiltLC = RebuildAM.get(*F).liveCheck();
      auto T3 = Clock::now();
      PrevRefreshLC = &RefreshedLC;
      PrevRebuildLC = &RebuiltLC;

      double RefreshUs =
          std::chrono::duration<double, std::micro>(T1 - T0).count();
      double RebuildUs =
          std::chrono::duration<double, std::micro>(T3 - T2).count();
      if (Measured == RefreshBest.size()) {
        RefreshBest.push_back(RefreshUs);
        RebuildBest.push_back(RebuildUs);
        IsLoopEdit.push_back(LoopEdit);
      } else {
        RefreshBest[Measured] = std::min(RefreshBest[Measured], RefreshUs);
        RebuildBest[Measured] = std::min(RebuildBest[Measured], RebuildUs);
      }
      ++Measured;

      if (answerChecksum(RefreshedLC, *F, QRng) !=
          answerChecksum(RebuiltLC, *F, QRng)) {
        std::fprintf(stderr,
                     "FATAL: refresh/rebuild answer divergence at tier %u "
                     "edit %u\n",
                     Blocks, Edit);
        AnswersAgree = false;
        return R;
      }
    }

    if (Rep + 1 == Reps) {
      R.Edits = Measured;
      // The repair-path composition, from the live analysis objects.
      R.ScopedRepairs = RefreshFA->domTree().updateStats().ScopedRepairs;
      R.DomFullRebuilds = RefreshFA->domTree().updateStats().FullRebuilds;
      R.EngineRepatches =
          RefreshFA->liveCheck().updateStats().IncrementalRepatches;
      R.EngineRecomputes =
          RefreshFA->liveCheck().updateStats().FullRecomputes;
    }
  }

  std::vector<double> LoopRefresh, LoopRebuild, StructRefresh, StructRebuild;
  for (std::size_t I = 0; I != RefreshBest.size(); ++I) {
    if (IsLoopEdit[I]) {
      LoopRefresh.push_back(RefreshBest[I]);
      LoopRebuild.push_back(RebuildBest[I]);
    } else {
      StructRefresh.push_back(RefreshBest[I]);
      StructRebuild.push_back(RebuildBest[I]);
    }
  }
  R.RefreshUs = medianUs(RefreshBest);
  R.RebuildUs = medianUs(RebuildBest);
  R.Speedup = R.RefreshUs > 0 ? R.RebuildUs / R.RefreshUs : 0;
  R.LoopEdits = static_cast<unsigned>(LoopRefresh.size());
  R.LoopRefreshUs = medianUs(LoopRefresh);
  R.LoopRebuildUs = medianUs(LoopRebuild);
  R.LoopSpeedup =
      R.LoopRefreshUs > 0 ? R.LoopRebuildUs / R.LoopRefreshUs : 0;
  R.StructRefreshUs = medianUs(StructRefresh);
  R.StructRebuildUs = medianUs(StructRebuild);
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Smoke = false;
  for (int I = 1; I != Argc; ++I)
    if (std::strcmp(Argv[I], "--smoke") == 0)
      Smoke = true;

  std::vector<unsigned> Sizes = Smoke
                                    ? std::vector<unsigned>{64}
                                    : std::vector<unsigned>{256, 1024, 2048};
  unsigned Edits = Smoke ? 40 : 120;
  unsigned Reps = Smoke ? 2 : 4;
  constexpr unsigned AcceptanceTier = 1024;
  constexpr double AcceptanceSpeedup = 5.0;

  std::printf("Incremental refresh vs full rebuild, per single-edge CFG "
              "edit\n(one SPEC-shaped procedure per tier; %u edits; "
              "medians; answers checksummed\nagainst each other every "
              "edit)\n\n",
              Edits);

  TablePrinter Table({"Blocks", "Class", "Edits", "Refresh(us)",
                      "Rebuild(us)", "Speedup"});
  std::vector<JsonRecord> Records;
  bool AnswersAgree = true;
  double TierSpeedup = 0;

  for (unsigned Blocks : Sizes) {
    TierResult R = runTier(Blocks, Edits, Reps, AnswersAgree);
    if (!AnswersAgree)
      break;
    if (Blocks == AcceptanceTier)
      TierSpeedup = R.LoopSpeedup;
    Table.addRow({std::to_string(R.Blocks), "loop-edit",
                  std::to_string(R.LoopEdits),
                  TablePrinter::fmt(R.LoopRefreshUs),
                  TablePrinter::fmt(R.LoopRebuildUs),
                  TablePrinter::fmt(R.LoopSpeedup)});
    Table.addRow({std::to_string(R.Blocks), "structural",
                  std::to_string(R.Edits - R.LoopEdits),
                  TablePrinter::fmt(R.StructRefreshUs),
                  TablePrinter::fmt(R.StructRebuildUs),
                  TablePrinter::fmt(R.StructRefreshUs > 0
                                        ? R.StructRebuildUs /
                                              R.StructRefreshUs
                                        : 0)});
    Table.addRow({std::to_string(R.Blocks), "mixed",
                  std::to_string(R.Edits), TablePrinter::fmt(R.RefreshUs),
                  TablePrinter::fmt(R.RebuildUs),
                  TablePrinter::fmt(R.Speedup)});
    Records.push_back(
        JsonRecord()
            .num("blocks", std::uint64_t(R.Blocks))
            .num("edits", std::uint64_t(R.Edits))
            .num("refresh_us", R.RefreshUs)
            .num("rebuild_us", R.RebuildUs)
            .num("speedup_vs_rebuild", R.Speedup)
            .num("loop_edit_refresh_us", R.LoopRefreshUs)
            .num("loop_edit_rebuild_us", R.LoopRebuildUs)
            .num("loop_edit_speedup_vs_rebuild", R.LoopSpeedup)
            .num("structural_refresh_us", R.StructRefreshUs)
            .num("structural_rebuild_us", R.StructRebuildUs)
            .num("dom_scoped_repairs", R.ScopedRepairs)
            .num("dom_full_rebuilds", R.DomFullRebuilds)
            .num("livecheck_repatches", R.EngineRepatches)
            .num("livecheck_recomputes", R.EngineRecomputes));
  }

  Table.print();
  std::printf("\nAnswers byte-identical across both paths: %s\n",
              AnswersAgree ? "yes" : "NO - FAILURE");
  if (!Smoke) {
    bool Pass = TierSpeedup >= AcceptanceSpeedup;
    std::printf(
        "Acceptance (single-edge loop-edit refresh speedup at the "
        "%u-block tier): %.2fx (target >= %.1fx) %s\n",
        AcceptanceTier, TierSpeedup, AcceptanceSpeedup,
        Pass ? "PASS" : "FAIL");
    std::printf(
        "(loop edits — back-edge toggles, the paper's Section-7/JIT "
        "regime — leave the dominator\nplane untouched and repatch only "
        "T rows; structural branch rewires re-solve the\nscoped region "
        "and are reported separately above)\n");
  }

  std::string JsonPath = writeBenchJson("incremental", Records);
  if (!JsonPath.empty())
    std::printf("Wrote %s\n", JsonPath.c_str());
  return AnswersAgree ? 0 : 1;
}
