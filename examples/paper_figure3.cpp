//===- examples/paper_figure3.cpp - The paper's worked example -------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Walks through the paper's Figure 3 / Section 3.2 examples on the
// CFG-level API (no instructions needed — the engine only wants block
// ids): prints the precomputed R and T sets and replays the four worked
// queries with explanations.
//
//===----------------------------------------------------------------------===//

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "analysis/Reducibility.h"
#include "core/LiveCheck.h"
#include "ir/CFG.h"

#include <cstdio>

using namespace ssalive;

// Paper nodes are 1-based.
static constexpr unsigned P(unsigned PaperNode) { return PaperNode - 1; }

int main() {
  // The reconstruction of Figure 3 (see DESIGN.md): back edges (10,8),
  // (6,5), (7,2); defs w@2, x@3, y@1; uses =w@4, =x@9, =y@5.
  CFG G(11);
  auto Edge = [&G](unsigned From, unsigned To) { G.addEdge(P(From), P(To)); };
  Edge(1, 2);
  Edge(2, 3);
  Edge(2, 11);
  Edge(3, 4);
  Edge(3, 8);
  Edge(4, 5);
  Edge(5, 6);
  Edge(6, 7);
  Edge(6, 5);
  Edge(7, 2);
  Edge(8, 9);
  Edge(9, 6);
  Edge(9, 10);
  Edge(10, 8);

  DFS D(G);
  DomTree DT(G, D);
  LiveCheck Check(G, D, DT);

  std::printf("Figure 3 CFG: 11 nodes, %u edges, %zu back edges ",
              G.numEdges(), D.backEdges().size());
  std::printf("(targets:");
  for (auto [S, T] : D.backEdges())
    std::printf(" %u->%u", S + 1, T + 1);
  std::printf(")\n");
  ReducibilityInfo Red = analyzeReducibility(D, DT);
  std::printf("reducible: %s\n\n", Red.Reducible ? "yes" : "no");

  std::printf("precomputed sets (paper numbering):\n");
  for (unsigned V = 1; V <= 11; ++V) {
    std::printf("  node %2u:  R = {", V);
    for (unsigned W = 1; W <= 11; ++W)
      if (Check.isReducedReachable(P(V), P(W)))
        std::printf(" %u", W);
    std::printf(" }  T = {");
    for (unsigned W = 1; W <= 11; ++W)
      if (Check.isInT(P(V), P(W)))
        std::printf(" %u", W);
    std::printf(" }\n");
  }

  struct Query {
    const char *Var;
    unsigned Def, Use, Q;
    const char *Expect;
    const char *Why;
  };
  const Query Queries[] = {
      {"x", 3, 9, 10, "live",
       "the use at 9 is reduced reachable from 8, the target of back edge "
       "(10,8)"},
      {"y", 1, 5, 10, "live",
       "two levels of T-chaining: (10,8) to 8, then via 9 and the cross "
       "edge to 6,\n              and back edge (6,5) reaches the use at 5"},
      {"w", 2, 4, 10, "dead",
       "target 2 is reachable from 10 but not strictly dominated by "
       "def(w)=2, so the\n              dominance interval filters it out"},
      {"x", 3, 9, 4, "dead",
       "reaching 8 from 4 means leaving and re-entering def(x)'s dominance "
       "subtree,\n              so 8 is not in T_4 (Definition 5's filter)"},
  };

  std::printf("\nworked queries from Section 3.2:\n");
  for (const Query &Q : Queries) {
    std::vector<unsigned> Uses{P(Q.Use)};
    bool Live = Check.isLiveIn(P(Q.Def), P(Q.Q), Uses);
    std::printf("\n  is %s (def@%u, use@%u) live-in at %u?  ->  %s "
                "(expected %s)\n",
                Q.Var, Q.Def, Q.Use, Q.Q, Live ? "live" : "dead", Q.Expect);
    std::printf("    because: %s\n", Q.Why);
  }
  return 0;
}
