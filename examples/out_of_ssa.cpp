//===- examples/out_of_ssa.cpp - SSA destruction walkthrough ---------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's measured use case end to end: take an SSA function whose φs
// include the classic "swap" pattern, run Sreedhar-III SSA destruction
// driven by fast liveness queries, and show the resulting φ-free program
// plus the pass statistics (queries issued, copies inserted, resources
// coalesced). Also contrasts with the query-free Method I (copy
// everything).
//
//===----------------------------------------------------------------------===//

#include "core/FunctionLiveness.h"
#include "ir/Clone.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Interpreter.h"
#include "ssa/SSADestruction.h"

#include <cstdio>

using namespace ssalive;

int main() {
  const char *Source = R"(
func @swapsum {
entry:
  %n = param 0
  %a0 = const 1
  %b0 = const 2
  %zero = const 0
  jump header
header:
  %i = phi [%zero, entry], [%inext, body]
  %a = phi [%a0, entry], [%b, body]
  %b = phi [%b0, entry], [%a, body]
  %cmp = cmplt %i, %n
  branch %cmp, body, exit
body:
  %one = const 1
  %inext = add %i, %one
  jump header
exit:
  %d = sub %a, %b
  ret %d
}
)";

  ParseResult Parsed = parseFunction(Source);
  if (!Parsed.Func) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function &F = *Parsed.Func;
  std::printf("=== input (SSA, with a phi swap) ===\n%s\n",
              printFunction(F).c_str());

  // Keep a pristine copy to demonstrate behavioural equivalence, and a
  // second clone for the Method I comparison.
  auto Reference = cloneFunction(F);
  auto MethodICopy = cloneFunction(F);

  // Sreedhar Method III: liveness-query-driven coalescing. The liveness
  // backend is the paper's fast checker, precomputed once up front — the
  // copies the pass inserts do not invalidate it.
  FunctionLiveness Liveness(F);
  DestructionStats Stats = destructSSA(F, Liveness);

  std::printf("=== after out-of-SSA (Method III, coalescing) ===\n%s\n",
              printFunction(F).c_str());
  std::printf("phis eliminated:     %u\n", Stats.PhisEliminated);
  std::printf("liveness queries:    %llu\n",
              static_cast<unsigned long long>(Stats.LivenessQueries));
  std::printf("copies inserted:     %u\n", Stats.CopiesInserted);
  std::printf("resources coalesced: %u\n\n", Stats.ResourcesCoalesced);

  FunctionLiveness LivenessI(*MethodICopy);
  DestructionOptions OptsI;
  OptsI.Method = DestructionMethod::CopyAll;
  DestructionStats StatsI = destructSSA(*MethodICopy, LivenessI, OptsI);
  std::printf("Method I (no liveness, isolate everything) would have "
              "inserted %u copies\ninstead of %u.\n\n",
              StatsI.CopiesInserted, Stats.CopiesInserted);

  // Prove both transformations preserved behaviour.
  for (std::int64_t N : {0, 1, 2, 3, 7}) {
    ExecutionResult Before = interpret(*Reference, {N});
    ExecutionResult After = interpret(F, {N});
    ExecutionResult AfterI = interpret(*MethodICopy, {N});
    bool Ok = sameObservableBehavior(Before, After) &&
              sameObservableBehavior(Before, AfterI);
    std::printf("swapsum(%lld) = %lld   [%s]\n",
                static_cast<long long>(N),
                static_cast<long long>(After.ReturnValue),
                Ok ? "all variants agree" : "MISMATCH");
    if (!Ok)
      return 1;
  }
  return 0;
}
