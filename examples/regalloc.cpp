//===- examples/regalloc.cpp - SSA register assignment ---------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The class of client the paper's introduction motivates: register
// allocation on SSA form. SSA interference graphs are chordal, so
// assigning registers greedily in dominance-tree preorder of the
// definitions is optimal for the number of registers; the only analysis
// ingredient is the interference test, which is exactly the
// liveness-query pattern this library accelerates (Budimlić et al. via
// isLiveIn/isLiveOut).
//
// The example allocates registers for a small function, prints the
// assignment, and verifies independently (against the brute-force oracle)
// that no two simultaneously-live values share a register.
//
//===----------------------------------------------------------------------===//

#include "analysis/DFS.h"
#include "analysis/DomTree.h"
#include "core/FunctionLiveness.h"
#include "ir/CFG.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "liveness/LivenessOracle.h"
#include "ssa/InterferenceCheck.h"

#include <cstdio>
#include <vector>

using namespace ssalive;

int main() {
  ParseResult Parsed = parseFunction(R"(
func @poly {
entry:
  %x = param 0
  %n = param 1
  %zero = const 0
  %one = const 1
  jump header
header:
  %i = phi [%zero, entry], [%inext, body]
  %acc = phi [%one, entry], [%accnext, body]
  %c = cmplt %i, %n
  branch %c, body, exit
body:
  %accnext = mul %acc, %x
  %inext = add %i, %one
  jump header
exit:
  %r = add %acc, %x
  ret %r
}
)");
  if (!Parsed.Func) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function &F = *Parsed.Func;
  std::printf("%s\n", printFunction(F).c_str());

  CFG G = CFG::fromFunction(F);
  DFS D(G);
  DomTree DT(G, D);
  FunctionLiveness Liveness(F);
  InterferenceCheck Interference(F, DT, Liveness);

  // Values in dominance-tree preorder of their definition blocks (defs
  // within a block keep instruction order). On SSA form this is a perfect
  // elimination order of the chordal interference graph, so greedy
  // coloring is optimal for the interference relation used (ours is the
  // conservative block-granular test, so a program-point-exact allocator
  // could still do slightly better).
  std::vector<Value *> Order;
  for (unsigned Num = 0; Num != G.numNodes(); ++Num) {
    const BasicBlock *B = F.block(DT.nodeAtNum(Num));
    for (const auto &I : B->instructions())
      if (I->result())
        Order.push_back(I->result());
  }

  std::vector<int> RegOf(F.numValues(), -1);
  int MaxReg = -1;
  for (Value *V : Order) {
    // Collect registers of already-colored interfering values.
    std::vector<bool> Taken(Order.size(), false);
    for (Value *Other : Order) {
      if (Other == V || RegOf[Other->id()] < 0)
        continue;
      if (Interference.interfere(*V, *Other))
        Taken[RegOf[Other->id()]] = true;
    }
    int Reg = 0;
    while (Taken[Reg])
      ++Reg;
    RegOf[V->id()] = Reg;
    if (Reg > MaxReg)
      MaxReg = Reg;
  }

  std::printf("greedy SSA allocation in dominance order (%llu liveness "
              "queries issued):\n",
              static_cast<unsigned long long>(
                  Interference.queriesIssued()));
  for (Value *V : Order)
    std::printf("  %%%-8s -> r%d\n", V->name().c_str(), RegOf[V->id()]);
  std::printf("registers used: %d\n\n", MaxReg + 1);

  // Independent validation: for every block and every pair of values
  // live-in there (per the oracle), registers must differ.
  LivenessOracle Oracle(F);
  unsigned Violations = 0;
  for (const auto &B : F.blocks()) {
    std::vector<const Value *> Live;
    for (const auto &VP : F.values())
      if (!VP->defs().empty() && Oracle.isLiveIn(*VP, *B))
        Live.push_back(VP.get());
    for (size_t I = 0; I < Live.size(); ++I)
      for (size_t J = I + 1; J < Live.size(); ++J)
        if (RegOf[Live[I]->id()] == RegOf[Live[J]->id()]) {
          std::printf("violation: %%%s and %%%s share r%d but are both "
                      "live-in at %s\n",
                      Live[I]->name().c_str(), Live[J]->name().c_str(),
                      RegOf[Live[I]->id()], B->name().c_str());
          ++Violations;
        }
  }
  std::printf("%s\n", Violations == 0
                          ? "oracle check passed: no interfering values "
                            "share a register"
                          : "ALLOCATION BROKEN");
  return Violations == 0 ? 0 : 1;
}
