//===- examples/quickstart.cpp - Five-minute tour --------------------------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: parse a small SSA function, run the fast liveness checker,
// and ask live-in / live-out questions. Shows the three public layers most
// users need: the IR (parse/print), the precomputed engine, and queries.
//
//===----------------------------------------------------------------------===//

#include "core/FunctionLiveness.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <cstdio>

using namespace ssalive;

int main() {
  // A counted loop in the textual IR format. %i flows around the loop
  // through a phi; %n is consumed by the condition each iteration.
  const char *Source = R"(
func @count {
entry:
  %n = param 0
  %zero = const 0
  jump header
header:
  %i = phi [%zero, entry], [%next, body]
  %cmp = cmplt %i, %n
  branch %cmp, body, exit
body:
  %one = const 1
  %next = add %i, %one
  jump header
exit:
  ret %i
}
)";

  ParseResult Parsed = parseFunction(Source);
  if (!Parsed.Func) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function &F = *Parsed.Func;

  // Always verify before analyzing: the engine assumes strict SSA.
  VerifyResult V = verifySSA(F);
  if (!V.ok()) {
    std::fprintf(stderr, "invalid SSA: %s\n", V.message().c_str());
    return 1;
  }
  std::printf("%s\n", printFunction(F).c_str());

  // One-line setup: FunctionLiveness builds the CFG view, DFS, dominator
  // tree, and the variable-independent R/T precomputation.
  FunctionLiveness Liveness(F);

  std::printf("liveness queries (Boissinot et al., CGO'08):\n\n");
  std::printf("  %-10s", "");
  for (const auto &B : F.blocks())
    std::printf("  %8s", B->name().c_str());
  std::printf("\n");
  for (const auto &VP : F.values()) {
    const Value &Val = *VP;
    if (Val.defs().empty())
      continue;
    std::printf("  %%%-9s", Val.name().c_str());
    for (const auto &B : F.blocks()) {
      bool In = Liveness.isLiveIn(Val, *B);
      bool Out = Liveness.isLiveOut(Val, *B);
      std::printf("  %8s", In ? (Out ? "in+out" : "in") //
                              : (Out ? "out" : "-"));
    }
    std::printf("\n");
  }

  std::printf("\nreading the loop column-wise: %%n stays live through the "
              "whole loop, %%i is\nlive-out of body along the back edge, "
              "and %%next dies at the edge into header.\n");
  return 0;
}
