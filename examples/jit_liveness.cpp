//===- examples/jit_liveness.cpp - Transformation-stable liveness ----------===//
//
// Part of the ssalive project, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The property that motivates the paper for JIT compilers: the
// precomputation depends only on the CFG, so a pass that inserts
// instructions and creates new values — here a naive strength-reduction
// that materializes x*2 as x+x — can keep querying the same engine with no
// recomputation. A data-flow analysis would have to re-solve (or decay)
// after every edit. The example re-checks every query against a freshly
// built oracle after the edits.
//
//===----------------------------------------------------------------------===//

#include "core/FunctionLiveness.h"
#include "ir/Function.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "liveness/LivenessOracle.h"

#include <cstdio>

using namespace ssalive;

int main() {
  ParseResult Parsed = parseFunction(R"(
func @kernel {
entry:
  %x = param 0
  %two = const 2
  %c = cmplt %x, %two
  branch %c, small, big
small:
  %y1 = mul %x, %two
  jump join
big:
  %three = const 3
  %y2 = mul %three, %two
  jump join
join:
  %y = phi [%y1, small], [%y2, big]
  %r = mul %y, %two
  ret %r
}
)");
  if (!Parsed.Func) {
    std::fprintf(stderr, "parse error: %s\n", Parsed.Error.c_str());
    return 1;
  }
  Function &F = *Parsed.Func;

  // Precompute ONCE, like a JIT would at codegen entry.
  FunctionLiveness Liveness(F);
  const Value &Two = *F.value(1);
  std::printf("before edits: %%two live-out of entry: %s\n",
              Liveness.isLiveOut(Two, *F.entry()) ? "yes" : "no");

  // "Strength-reduce" every mul-by-%two into an add of the operand with
  // itself. This deletes instructions, adds instructions, and creates new
  // values — but never touches the CFG.
  unsigned Rewritten = 0;
  for (const auto &B : F.blocks()) {
    std::vector<Instruction *> Muls;
    for (const auto &I : B->instructions())
      if (I->opcode() == Opcode::Mul &&
          (I->operand(0) == &Two || I->operand(1) == &Two))
        Muls.push_back(I.get());
    for (Instruction *Mul : Muls) {
      Value *Other = Mul->operand(0) == &Two ? Mul->operand(1)
                                             : Mul->operand(0);
      Value *Result = Mul->result();
      // Find the position, insert add, erase the mul.
      unsigned Pos = 0;
      for (const auto &I : B->instructions()) {
        if (I.get() == Mul)
          break;
        ++Pos;
      }
      Mul->parent()->erase(Mul);
      B->insertAt(Pos, std::make_unique<Instruction>(
                           Opcode::Add, Result,
                           std::vector<Value *>{Other, Other}));
      ++Rewritten;
    }
  }
  std::printf("rewrote %u multiplications into adds (no CFG change)\n\n",
              Rewritten);
  std::printf("%s\n", printFunction(F).c_str());

  VerifyResult V = verifySSA(F);
  if (!V.ok()) {
    std::fprintf(stderr, "edits broke SSA: %s\n", V.message().c_str());
    return 1;
  }

  // The engine was never rebuilt. Its answers must nevertheless match a
  // fresh brute-force oracle on the edited function — including the now
  // much shorter live range of %two.
  LivenessOracle Oracle(F);
  unsigned Queries = 0, Mismatches = 0;
  for (const auto &Val : F.values()) {
    if (Val->defs().empty())
      continue;
    for (const auto &B : F.blocks()) {
      ++Queries;
      if (Liveness.isLiveIn(*Val, *B) != Oracle.isLiveIn(*Val, *B))
        ++Mismatches;
      if (Liveness.isLiveOut(*Val, *B) != Oracle.isLiveOut(*Val, *B))
        ++Mismatches;
    }
  }
  std::printf("after edits, WITHOUT recomputation: %u query pairs checked "
              "against a fresh\noracle, %u mismatches\n",
              Queries, Mismatches);
  std::printf("%%two live-out of entry is now: %s (its last use moved)\n",
              Liveness.isLiveOut(Two, *F.entry()) ? "yes" : "no");
  return Mismatches == 0 ? 0 : 1;
}
